//! The metric primitives: atomic counters, gauges, and the log-scaled
//! histogram.
//!
//! Every type here is recorded with `&self` through relaxed atomics — no
//! locks, no allocation on the hot path. Handles are shared as
//! `Arc<Counter>` etc.; cloning a handle is one refcount bump and recording
//! through it is one `fetch_add`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing integer counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` and returns the *new* total (useful for 1-in-N sampling
    /// decisions keyed off an event index).
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        // Relaxed: an independent event count — fetch_add is atomic per
        // series, and no other memory is ordered against it.
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // Relaxed: exposition reads a monotonic count; staleness by a few
        // events is inherent to sampling, ordering buys nothing.
        self.0.load(Ordering::Relaxed)
    }
}

/// A monotonically increasing `f64` counter (fractional accumulation, e.g.
/// microjoules of sense energy). Adds are a CAS loop over the value's bit
/// pattern — still lock-free, slightly more expensive than [`Counter`].
#[derive(Debug, Default)]
pub struct FloatCounter(AtomicU64);

impl FloatCounter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    /// Adds `v` (negative additions are a caller bug but are not checked —
    /// the type encodes intent, not an invariant).
    #[inline]
    pub fn add(&self, v: f64) {
        // Relaxed: the CAS loop's correctness comes from compare_exchange
        // itself (lost races reload and retry); the bit pattern is the only
        // shared state, so no acquire/release pairing is needed.
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) // Relaxed: see CAS note above.
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // Relaxed: point-in-time sample of a monotonic sum.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A last-write-wins `f64` gauge (queue depth, realtime factor, alarm
/// state, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        // Relaxed: last-write-wins by definition of a gauge; the stored
        // bits are self-contained, nothing downstream is ordered on them.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) — a CAS loop like
    /// [`FloatCounter::add`], for gauges that track a live population
    /// (healthy replicas, in-flight windows) where concurrent increments
    /// and decrements must not lose updates the way racing
    /// `set(get() ± 1)` pairs would.
    #[inline]
    pub fn add(&self, delta: f64) {
        // Relaxed: the CAS loop's correctness comes from compare_exchange
        // itself (lost races reload and retry); the bit pattern is the only
        // shared state, so no acquire/release pairing is needed.
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) // Relaxed: see CAS note above.
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // Relaxed: reads whichever write most recently landed.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Fixed log-scaled histogram: bucket `i` covers values up to
/// `growth^i` units, so resolution is a constant relative error
/// (`growth − 1`) across the whole range — HdrHistogram in miniature.
///
/// Generalized out of the serving latency collector so every subsystem
/// shares one type: for latencies the unit is **microseconds** with the
/// [`latency`](Self::latency) shape (420 buckets of 5% — 1 µs to ~17 min);
/// for dimensionless quantities (batch sizes, …) use
/// [`new`](Self::new) with whatever shape fits.
///
/// Recording is one relaxed `fetch_add` on the bucket plus one CAS on the
/// running sum; quantile queries walk the bucket array once and report the
/// **geometric midpoint** of the containing bucket — the unbiased point
/// estimate for log-scaled buckets (reporting the upper bound instead
/// would overstate every percentile by up to one bucket width).
#[derive(Debug)]
pub struct LogHistogram {
    growth: f64,
    ln_growth: f64,
    counts: Box<[AtomicU64]>,
    sum: FloatCounter,
}

/// Latency-shaped histogram constants: 5% buckets from 1 µs to ~17 min.
pub const LATENCY_BUCKETS: usize = 420;
/// Per-bucket growth factor of the latency shape (≈5% resolution).
pub const LATENCY_GROWTH: f64 = 1.05;

impl LogHistogram {
    /// A histogram with `buckets` buckets growing by `growth` per bucket.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `growth <= 1.0`.
    pub fn new(buckets: usize, growth: f64) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        assert!(growth > 1.0, "growth factor must exceed 1");
        Self {
            growth,
            ln_growth: growth.ln(),
            counts: (0..buckets).map(|_| AtomicU64::new(0)).collect(),
            sum: FloatCounter::new(),
        }
    }

    /// The standard latency shape (microsecond unit): 420 buckets of 5%,
    /// 1 µs floor, ~17 min ceiling.
    pub fn latency() -> Self {
        Self::new(LATENCY_BUCKETS, LATENCY_GROWTH)
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Per-bucket growth factor.
    pub fn growth(&self) -> f64 {
        self.growth
    }

    /// The bucket covering `value` (unit-agnostic): values at or below 1
    /// unit land in bucket 0, values beyond the last bound clamp into the
    /// top bucket.
    #[inline]
    pub fn bucket_of(&self, value: f64) -> usize {
        if value <= 1.0 {
            return 0;
        }
        (value.ln() / self.ln_growth)
            .ceil()
            .min((self.counts.len() - 1) as f64) as usize
    }

    /// Geometric midpoint of bucket `i`'s bounds — the unbiased point
    /// estimate for a log-scaled bucket.
    #[inline]
    pub fn bucket_mid(&self, i: usize) -> f64 {
        self.growth.powf(i as f64 - 0.5)
    }

    /// Upper bound of bucket `i` (`growth^i` units).
    #[inline]
    pub fn bucket_bound(&self, i: usize) -> f64 {
        self.growth.powf(i as f64)
    }

    /// Records one observation of `value` units.
    #[inline]
    pub fn record_value(&self, value: f64) {
        // Relaxed: each bucket is an independent event counter; a scrape
        // racing a record may miss the newest sample, which is fine.
        self.counts[self.bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.add(value);
    }

    /// Records one duration (microsecond unit).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_value(d.as_secs_f64() * 1e6);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        // Relaxed: bucket reads need no mutual consistency — quantiles and
        // totals are statistical summaries, not linearizable snapshots.
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded values (units).
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Point-in-time copy of the per-bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed)) // Relaxed: statistical snapshot, as in `count`.
            .collect()
    }

    /// Values at several quantiles in **one** histogram pass: the
    /// per-bucket atomics are loaded once and every requested quantile is
    /// resolved against the same cumulative walk. Returns bucket
    /// midpoints (units); an empty histogram reports zero everywhere.
    pub fn value_quantiles(&self, qs: &[f64]) -> Vec<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; qs.len()];
        }
        let targets: Vec<u64> = qs
            .iter()
            .map(|q| ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64)
            .collect();
        let mut out = vec![self.bucket_mid(counts.len() - 1); qs.len()];
        let mut resolved = vec![false; qs.len()];
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            let mut all_done = true;
            for (j, &target) in targets.iter().enumerate() {
                if !resolved[j] {
                    if seen >= target {
                        out[j] = self.bucket_mid(i);
                        resolved[j] = true;
                    } else {
                        all_done = false;
                    }
                }
            }
            if all_done {
                break;
            }
        }
        out
    }

    /// Single-quantile form of [`value_quantiles`](Self::value_quantiles).
    pub fn value_quantile(&self, q: f64) -> f64 {
        self.value_quantiles(&[q])[0]
    }

    /// [`value_quantiles`](Self::value_quantiles) for duration histograms
    /// (microsecond unit).
    pub fn duration_quantiles(&self, qs: &[f64]) -> Vec<Duration> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return vec![Duration::ZERO; qs.len()];
        }
        self.value_quantiles(qs)
            .into_iter()
            .map(|us| Duration::from_secs_f64(us / 1e6))
            .collect()
    }

    /// Single-quantile form of
    /// [`duration_quantiles`](Self::duration_quantiles).
    pub fn duration_quantile(&self, q: f64) -> Duration {
        self.duration_quantiles(&[q])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_add_returns_new_total() {
        let c = Counter::new();
        assert_eq!(c.add(3), 3);
        c.inc();
        assert_eq!(c.add(2), 6);
        assert_eq!(c.get(), 6);
    }

    #[test]
    fn float_counter_accumulates_fractions() {
        let c = FloatCounter::new();
        for _ in 0..1000 {
            c.add(0.125);
        }
        assert!((c.get() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.5);
        g.set(-1.25);
        assert_eq!(g.get(), -1.25);
    }

    #[test]
    fn gauge_add_survives_concurrent_updates() {
        let g = Arc::new(Gauge::new());
        g.set(100.0);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        // Two threads add, two subtract: net zero.
                        g.add(if t % 2 == 0 { 1.0 } else { -1.0 });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("gauge updater");
        }
        assert_eq!(g.get(), 100.0, "racing add/sub pairs must not lose updates");
    }

    #[test]
    fn histogram_floor_clamp_and_midpoints() {
        let h = LogHistogram::new(10, 2.0);
        // 1-unit floor: everything at or below one unit is bucket 0.
        assert_eq!(h.bucket_of(0.0), 0);
        assert_eq!(h.bucket_of(1.0), 0);
        assert_eq!(h.bucket_of(0.3), 0);
        // Beyond the top bound (2^9 = 512) clamps into the last bucket.
        assert_eq!(h.bucket_of(1e12), 9);
        h.record_value(1e12);
        assert_eq!(h.value_quantile(0.5), h.bucket_mid(9));
        // Midpoints sit strictly inside their bucket bounds…
        for i in 1..h.buckets() {
            assert!(h.bucket_mid(i) > h.bucket_bound(i - 1));
            assert!(h.bucket_mid(i) < h.bucket_bound(i));
        }
        // …and are strictly monotonic across buckets.
        for i in 1..h.buckets() {
            assert!(h.bucket_mid(i) > h.bucket_mid(i - 1));
        }
    }

    #[test]
    fn latency_shape_matches_historical_serving_semantics() {
        // The serving stats pinned these semantics before the histogram
        // moved here: bucket = ceil(ln(µs)/ln(1.05)), midpoint =
        // 1.05^(i − 0.5). Any drift shifts every serving percentile.
        let h = LogHistogram::latency();
        for &us in &[3u64, 47, 1000, 12_345, 800_000, 5_000_000] {
            h.record_value(0.0); // keep a bucket-0 floor entry around
            let bucket = ((us as f64).ln() / 1.05f64.ln()).ceil();
            assert_eq!(h.bucket_of(us as f64), bucket as usize);
            assert_eq!(h.bucket_mid(bucket as usize), 1.05f64.powf(bucket - 0.5));
        }
    }

    #[test]
    fn concurrent_hammering_loses_nothing() {
        // 8 threads × 50_000 events each on a shared counter, float
        // counter and histogram: totals must be exact, not approximate —
        // relaxed ordering reorders, it never drops.
        let counter = Arc::new(Counter::new());
        let fcounter = Arc::new(FloatCounter::new());
        let hist = Arc::new(LogHistogram::latency());
        let threads = 8;
        let per_thread = 50_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let counter = Arc::clone(&counter);
                let fcounter = Arc::clone(&fcounter);
                let hist = Arc::clone(&hist);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        counter.inc();
                        fcounter.add(0.5);
                        // Spread across many buckets, thread-dependent.
                        hist.record_value((1 + t as u64 * 1000 + i % 997) as f64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("hammer thread");
        }
        let total = threads as u64 * per_thread;
        assert_eq!(counter.get(), total);
        assert!((fcounter.get() - total as f64 * 0.5).abs() < 1e-6);
        assert_eq!(hist.count(), total);
        assert_eq!(hist.bucket_counts().iter().sum::<u64>(), total);
    }

    #[test]
    fn quantiles_track_recorded_distribution() {
        let h = LogHistogram::latency();
        for _ in 0..90 {
            h.record_value(100.0);
        }
        for _ in 0..10 {
            h.record_value(10_000.0);
        }
        let p50 = h.value_quantile(0.5);
        let p99 = h.value_quantile(0.99);
        assert!((90.0..=120.0).contains(&p50), "{p50}");
        assert!((9_000.0..=12_000.0).contains(&p99), "{p99}");
        assert!((h.sum() - (90.0 * 100.0 + 10.0 * 10_000.0)).abs() < 1e-6);
        // Multi-quantile pass matches individual queries.
        let qs = [0.1, 0.5, 0.9, 0.95, 0.99, 1.0];
        for (q, got) in qs.iter().zip(h.value_quantiles(&qs)) {
            assert_eq!(got, h.value_quantile(*q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::latency();
        assert_eq!(h.value_quantile(0.99), 0.0);
        assert_eq!(h.duration_quantile(0.99), Duration::ZERO);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn duration_roundtrip_uses_microsecond_unit() {
        let h = LogHistogram::latency();
        h.record(Duration::from_micros(1000));
        let got = h.duration_quantile(0.5).as_secs_f64() * 1e6;
        assert!((got / 1000.0 - 1.0).abs() < 0.026, "{got}µs");
    }
}
