//! The metrics registry: named, labeled handles to the atomic primitives.
//!
//! Registration (`counter`/`gauge`/`histogram`) takes a write lock once per
//! metric; the returned `Arc` handle is then recorded through lock-free for
//! the rest of the process lifetime. Look-ups are get-or-create, so two
//! subsystems asking for the same (name, labels) pair share one series.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::export::{HistogramSample, NumberSample, TelemetrySnapshot};
use crate::metrics::{Counter, FloatCounter, Gauge, LogHistogram};

/// A metric series identity: metric name plus a rendered label set.
///
/// Labels are stored pre-rendered in Prometheus form (e.g. `server="0"` or
/// `patient="p3",shard="1"`) — the registry treats them as an opaque,
/// ordered key. Empty string means no labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric family name (`rbnn_serve_completed_total`, …).
    pub name: String,
    /// Rendered label pairs, or empty for an unlabeled series.
    pub labels: String,
}

impl MetricKey {
    /// A key for `name` with pre-rendered `labels`.
    pub fn new(name: &str, labels: &str) -> Self {
        Self {
            name: name.to_string(),
            labels: labels.to_string(),
        }
    }
}

enum MetricEntry {
    Counter(Arc<Counter>),
    FloatCounter(Arc<FloatCounter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<LogHistogram>),
}

struct Family {
    help: String,
    series: BTreeMap<String, MetricEntry>,
}

/// A collection of named metric series with lock-free recording handles.
///
/// Usually accessed through [`crate::global`], but independent registries
/// can be created for tests or scoped collection.
#[derive(Default)]
pub struct MetricsRegistry {
    families: RwLock<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry_or_insert<T>(
        &self,
        name: &str,
        labels: &str,
        help: &str,
        make: impl FnOnce() -> MetricEntry,
        pick: impl Fn(&MetricEntry) -> Option<Arc<T>>,
    ) -> Arc<T> {
        if let Some(found) = self
            .families
            .read()
            .expect("registry lock")
            .get(name)
            .and_then(|f| f.series.get(labels))
            .and_then(&pick)
        {
            return found;
        }
        let mut families = self.families.write().expect("registry lock");
        let family = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        let entry = family.series.entry(labels.to_string()).or_insert_with(make);
        pick(entry).unwrap_or_else(|| {
            panic!("telemetry metric `{name}{{{labels}}}` re-registered with a different type")
        })
    }

    /// Gets or creates a [`Counter`] series.
    pub fn counter(&self, name: &str, labels: &str, help: &str) -> Arc<Counter> {
        self.entry_or_insert(
            name,
            labels,
            help,
            || MetricEntry::Counter(Arc::new(Counter::new())),
            |e| match e {
                MetricEntry::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Gets or creates a [`FloatCounter`] series.
    pub fn float_counter(&self, name: &str, labels: &str, help: &str) -> Arc<FloatCounter> {
        self.entry_or_insert(
            name,
            labels,
            help,
            || MetricEntry::FloatCounter(Arc::new(FloatCounter::new())),
            |e| match e {
                MetricEntry::FloatCounter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Gets or creates a [`Gauge`] series.
    pub fn gauge(&self, name: &str, labels: &str, help: &str) -> Arc<Gauge> {
        self.entry_or_insert(
            name,
            labels,
            help,
            || MetricEntry::Gauge(Arc::new(Gauge::new())),
            |e| match e {
                MetricEntry::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Gets or creates a latency-shaped [`LogHistogram`] series
    /// (microsecond unit, 5% buckets).
    pub fn histogram(&self, name: &str, labels: &str, help: &str) -> Arc<LogHistogram> {
        self.histogram_with(name, labels, help, LogHistogram::latency)
    }

    /// Gets or creates a [`LogHistogram`] series with a caller-chosen shape
    /// (only consulted on first registration).
    pub fn histogram_with(
        &self,
        name: &str,
        labels: &str,
        help: &str,
        make: impl FnOnce() -> LogHistogram,
    ) -> Arc<LogHistogram> {
        self.entry_or_insert(
            name,
            labels,
            help,
            || MetricEntry::Histogram(Arc::new(make())),
            |e| match e {
                MetricEntry::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Point-in-time copy of every series, ready for exposition.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let families = self.families.read().expect("registry lock");
        let mut snap = TelemetrySnapshot::default();
        for (name, family) in families.iter() {
            for (labels, entry) in family.series.iter() {
                match entry {
                    MetricEntry::Counter(c) => snap.counters.push(NumberSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        help: family.help.clone(),
                        value: c.get() as f64,
                    }),
                    MetricEntry::FloatCounter(c) => snap.counters.push(NumberSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        help: family.help.clone(),
                        value: c.get(),
                    }),
                    MetricEntry::Gauge(g) => snap.gauges.push(NumberSample {
                        name: name.clone(),
                        labels: labels.clone(),
                        help: family.help.clone(),
                        value: g.get(),
                    }),
                    MetricEntry::Histogram(h) => {
                        let counts = h.bucket_counts();
                        snap.histograms.push(HistogramSample {
                            name: name.clone(),
                            labels: labels.clone(),
                            help: family.help.clone(),
                            growth: h.growth(),
                            counts,
                            sum: h.sum(),
                        });
                    }
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_one_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("rbnn_test_total", "", "help");
        let b = reg.counter("rbnn_test_total", "", "ignored second help");
        a.add(5);
        assert_eq!(b.get(), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn labels_split_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("rbnn_test_total", "shard=\"0\"", "help");
        let b = reg.counter("rbnn_test_total", "shard=\"1\"", "help");
        a.inc();
        assert_eq!(a.get(), 1);
        assert_eq!(b.get(), 0);
    }

    #[test]
    #[should_panic(expected = "re-registered with a different type")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("rbnn_test_total", "", "help");
        let _ = reg.gauge("rbnn_test_total", "", "help");
    }

    #[test]
    fn snapshot_sees_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("z_counter", "", "a counter").add(7);
        reg.float_counter("y_energy", "", "an energy counter")
            .add(0.5);
        reg.gauge("x_gauge", "k=\"v\"", "a gauge").set(2.5);
        reg.histogram("w_hist", "", "a histogram")
            .record_value(100.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        // Families are sorted by name for deterministic exposition.
        assert_eq!(snap.counters[0].name, "y_energy");
        assert_eq!(snap.counters[1].name, "z_counter");
        assert_eq!(snap.histograms[0].counts.iter().sum::<u64>(), 1);
    }

    #[test]
    fn histogram_with_custom_shape_only_on_first_registration() {
        let reg = MetricsRegistry::new();
        let a = reg.histogram_with("batch", "", "batch sizes", || LogHistogram::new(64, 2.0));
        let b = reg.histogram("batch", "", "batch sizes");
        assert_eq!(a.buckets(), 64);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
