//! Request-lifecycle span tracing.
//!
//! A [`SpanRecord`] decomposes one request's end-to-end latency into the
//! three phases of the serving pipeline:
//!
//! ```text
//! submit ──queue_wait──▶ dequeue ──batch_wait──▶ dispatch ──service──▶ done
//!          (in queue)              (batcher linger)         (engine)
//! ```
//!
//! Records are sampled (typically 1-in-N completions) into a fixed
//! [`SpanRing`] so that after a run the tail can be decomposed: a p99
//! spike whose samples are dominated by `batch_wait` implicates the
//! linger policy, one dominated by `service` implicates the engine.
//!
//! The ring trades completeness for zero hot-path cost: each slot is a
//! `Mutex<Option<SpanRecord>>` taken with `try_lock`, so a writer that
//! collides with a reader (or another writer on the same slot) drops its
//! sample instead of waiting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One sampled request lifecycle, decomposed into pipeline phases.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Time from submission until a worker dequeued the request.
    pub queue_wait: Duration,
    /// Time from dequeue until the batch was dispatched to an engine
    /// (the batching linger).
    pub batch_wait: Duration,
    /// Time from dispatch until the reply was posted (engine evaluation
    /// plus reply fan-out).
    pub service: Duration,
    /// Number of samples in the request this span belongs to.
    pub samples: usize,
}

impl SpanRecord {
    /// End-to-end latency: the sum of the three phases.
    pub fn total(&self) -> Duration {
        self.queue_wait + self.batch_wait + self.service
    }

    /// The dominant phase name (`"queue"`, `"batch"`, or `"service"`).
    pub fn dominant_phase(&self) -> &'static str {
        if self.queue_wait >= self.batch_wait && self.queue_wait >= self.service {
            "queue"
        } else if self.batch_wait >= self.service {
            "batch"
        } else {
            "service"
        }
    }
}

/// Fixed-capacity ring of sampled [`SpanRecord`]s.
#[derive(Debug)]
pub struct SpanRing {
    slots: Box<[Mutex<Option<SpanRecord>>]>,
    next: AtomicUsize,
}

impl SpanRing {
    /// A ring holding up to `capacity` most-recent samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "span ring needs at least one slot");
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Capacity in samples.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pushes a sample, overwriting the oldest; silently dropped if the
    /// target slot is contended (never blocks).
    pub fn push(&self, record: SpanRecord) {
        // Relaxed: the counter only spreads writers across slots; slot
        // contents are protected by each slot's mutex, not by this index.
        let idx = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        if let Ok(mut slot) = self.slots[idx].try_lock() {
            *slot = Some(record);
        }
    }

    /// Copies out every retained sample (unordered).
    pub fn samples(&self) -> Vec<SpanRecord> {
        self.slots
            .iter()
            .filter_map(|s| s.try_lock().ok().and_then(|guard| *guard))
            .collect()
    }

    /// The retained sample with the largest end-to-end latency — the
    /// closest witness to the observed p99/p100 tail.
    pub fn worst(&self) -> Option<SpanRecord> {
        self.samples()
            .into_iter()
            .max_by(|a, b| a.total().cmp(&b.total()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(q: u64, b: u64, s: u64) -> SpanRecord {
        SpanRecord {
            queue_wait: Duration::from_micros(q),
            batch_wait: Duration::from_micros(b),
            service: Duration::from_micros(s),
            samples: 1,
        }
    }

    #[test]
    fn total_and_dominant_phase() {
        let r = span(10, 20, 5);
        assert_eq!(r.total(), Duration::from_micros(35));
        assert_eq!(r.dominant_phase(), "batch");
        assert_eq!(span(30, 20, 5).dominant_phase(), "queue");
        assert_eq!(span(1, 2, 50).dominant_phase(), "service");
    }

    #[test]
    fn ring_wraps_and_keeps_most_recent() {
        let ring = SpanRing::new(4);
        for i in 0..10u64 {
            ring.push(span(i, 0, 0));
        }
        let mut waits: Vec<u64> = ring
            .samples()
            .iter()
            .map(|r| r.queue_wait.as_micros() as u64)
            .collect();
        waits.sort_unstable();
        // Ten pushes through four slots: the last four survive.
        assert_eq!(waits, vec![6, 7, 8, 9]);
    }

    #[test]
    fn worst_picks_largest_total() {
        let ring = SpanRing::new(8);
        ring.push(span(1, 1, 1));
        ring.push(span(100, 5, 5));
        ring.push(span(2, 2, 90));
        assert_eq!(ring.worst().expect("samples"), span(100, 5, 5));
    }

    #[test]
    fn empty_ring_has_no_worst() {
        let ring = SpanRing::new(8);
        assert!(ring.worst().is_none());
        assert!(ring.samples().is_empty());
    }

    #[test]
    fn concurrent_pushes_never_block_or_corrupt() {
        use std::sync::Arc;
        let ring = Arc::new(SpanRing::new(32));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        ring.push(span(t * 10_000 + i, 1, 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("push thread");
        }
        let samples = ring.samples();
        assert!(samples.len() <= 32);
        // Every surviving record is one that was actually pushed (no
        // torn reads): phase fields must match the writer's pattern.
        for r in samples {
            assert_eq!(r.batch_wait, Duration::from_micros(1));
            assert_eq!(r.service, Duration::from_micros(1));
        }
    }
}
