//! The cross-backend differential oracle.
//!
//! One generated model, five executions of the same samples:
//!
//! 1. **float** — the `rbnn-nn` training graph in eval phase (the
//!    reference the classifier was trained as);
//! 2. **binary single** — [`rbnn_binary::BinaryNetwork::logits`] per
//!    sample (the integer XNOR/popcount datapath);
//! 3. **binary batch** — `logits_batch` / `classify_batch` (the packed
//!    bit-matrix kernels the serving hot path uses);
//! 4. **RRAM** — [`rbnn_rram::NetworkEngine`] sensing on simulated 2T2R
//!    arrays, both batched and single-sample;
//! 5. **plan** — a compiled op-graph [`rbnn_graph::ExecPlan`] replayed
//!    through the fused packed-word kernels, in software and on the RRAM
//!    fabric (the serving default; the legacy layer path above is its
//!    permanent conformance reference);
//! 6. **serve** — the full `rbnn-serve` enqueue → batcher → worker-pool
//!    pipeline, on the software backend and on the RRAM backend.
//!
//! Agreement contract: paths 2–6 on noise-free fabric
//! ([`rbnn_rram::EngineConfig::noise_free`]) must agree **bit-for-bit**
//! (`f32::to_bits` equality of every logit — they all compute
//! `scale·(2·popcount − n) + shift` from identical integer popcounts).
//! Path 1 computes the same quantities through float BatchNorm in a
//! different association order, so it is held to sign agreement: every
//! logit sign and every argmax must match except within a tiny
//! numerical tie band. A sixth, *noisy* execution programs a
//! deliberately marginal fabric and checks the observed argmax
//! disagreements against the margin model's calibrated flip-probability
//! bound.

use rand::rngs::StdRng;
use rand::SeedableRng;

use rbnn_nn::{Layer, Phase};
use rbnn_rram::{EngineConfig, NetworkEngine};
use rbnn_serve::{Backend, ModelRegistry, ServeConfig, ServeTask, Server};
use rbnn_tensor::{argmax, Tensor};

use crate::generate::GeneratedModel;

/// Oracle run configuration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Samples evaluated per model.
    pub samples: usize,
    /// Seed for input sampling (independent of the model seed).
    pub seed: u64,
    /// Also push every sample through the `rbnn-serve` pipeline (software
    /// and noise-free RRAM backends). Costs two server spawns per model.
    pub serve: bool,
    /// Also run the noisy-fabric margin-bound check.
    pub noisy: bool,
    /// Read-noise level (log-resistance σ) of the noisy fabric — high
    /// enough to populate the marginal band on fresh devices.
    pub noisy_read_noise: f64,
    /// Numerical tie band for float↔binary sign/argmax comparison.
    pub tie_tolerance: f32,
}

impl Default for OracleConfig {
    fn default() -> Self {
        Self {
            samples: 48,
            seed: 0x0AC1E,
            serve: true,
            noisy: true,
            noisy_read_noise: 0.25,
            tie_tolerance: 2e-3,
        }
    }
}

/// Result of the noisy-fabric statistical check.
#[derive(Debug, Clone, serde::Serialize)]
pub struct NoisyCheck {
    /// Cells of the noisy engine inside the ±6σ marginal band.
    pub marginal_cells: usize,
    /// Margin-model expectation of sense flips per classified sample.
    pub expected_flips_per_sample: f64,
    /// Upper acceptance bound on argmax disagreements over the batch:
    /// `E·N + 6·√(E·N) + 3` (union bound on "any sense flipped", Poisson
    /// tail slack) — sound because a prediction can only deviate from the
    /// noise-free one if at least one sense flipped.
    pub disagreement_bound: f64,
    /// Observed argmax disagreements vs the software path.
    pub observed_disagreements: usize,
    /// `observed ≤ bound`.
    pub within_bound: bool,
}

/// Per-model oracle outcome. All `*_bitwise` fields compare complete logit
/// vectors via `f32::to_bits`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct OracleReport {
    /// Generated model description.
    pub model: String,
    /// Samples evaluated.
    pub samples: usize,
    /// Float logit signs disagreeing with the binary path outside the tie
    /// band (must be 0).
    pub float_sign_mismatches: usize,
    /// Float argmax disagreements with top-2 margin above the tie band
    /// (must be 0).
    pub float_argmax_mismatches: usize,
    /// Largest |float − binary| logit deviation observed (numerical
    /// reassociation only; recorded, not gated).
    pub max_float_logit_dev: f32,
    /// Single-sample and batched binary kernels agree bitwise.
    pub batch_bitwise: bool,
    /// Compiled execution-plan replay (fused packed-word kernels) agrees
    /// bitwise with the legacy layer path, both at full batch and on a
    /// smaller batch replayed into the same (dirty) plan buffers.
    pub plan_bitwise: bool,
    /// Noise-free RRAM batch path agrees bitwise with the binary path.
    pub rram_batch_bitwise: bool,
    /// Noise-free RRAM single-sample path agrees bitwise.
    pub rram_single_bitwise: bool,
    /// Execution-plan replay on the noise-free RRAM fabric
    /// ([`rbnn_rram::NetworkEngine::replay_plan`]) agrees bitwise.
    pub rram_plan_bitwise: bool,
    /// Serve pipeline (software backend) returned bitwise-equal logits in
    /// request order (`None` when the serve paths were skipped).
    pub serve_bitwise: Option<bool>,
    /// Serve pipeline on noise-free RRAM backend agreed bitwise.
    pub serve_rram_bitwise: Option<bool>,
    /// Noisy-fabric statistical check (`None` when skipped).
    pub noisy: Option<NoisyCheck>,
}

impl OracleReport {
    /// True when every gated agreement held.
    pub fn passed(&self) -> bool {
        self.float_sign_mismatches == 0
            && self.float_argmax_mismatches == 0
            && self.batch_bitwise
            && self.plan_bitwise
            && self.rram_batch_bitwise
            && self.rram_single_bitwise
            && self.rram_plan_bitwise
            && self.serve_bitwise.unwrap_or(true)
            && self.serve_rram_bitwise.unwrap_or(true)
            && self.noisy.as_ref().map_or(true, |n| n.within_bound)
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs one generated model through every execution path and reports the
/// agreement. Never panics on disagreement — callers gate on
/// [`OracleReport::passed`] so a failing CI run still prints the full
/// cross-path picture.
pub fn check_model(model: &mut GeneratedModel, cfg: &OracleConfig) -> OracleReport {
    // Mix the full model identity into the input stream (FNV-1a over the
    // name) so every generated model draws its own inputs — name *length*
    // alone collides across same-family models and would silently reuse
    // one input pattern for many of them.
    let name_hash = model.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ name_hash);
    let n = cfg.samples.max(1);
    let classes = model.classes();
    let raw = model.sample_inputs(n, &mut rng);
    let feats = model.binarized_features(&raw);

    // Path 1: float training graph, eval phase.
    let float_logits = model.classifier.forward(&feats, Phase::Eval);

    // Path 2: binary single-sample.
    let width = model.feature_width();
    let mut single_logits: Vec<f32> = Vec::with_capacity(n * classes);
    for i in 0..n {
        single_logits.extend(
            model
                .network
                .logits(&feats.as_slice()[i * width..(i + 1) * width]),
        );
    }

    // Path 3: binary batched.
    let batch_logits = model.network.logits_batch(&feats);
    let batch_preds = model.network.classify_batch(&feats);
    let batch_bitwise = bits(batch_logits.as_slice()) == bits(&single_logits);

    // Path: compiled op-graph execution plan through the fused kernels —
    // full batch, then a smaller batch into the same dirty buffers (the
    // serve replay pattern).
    let row_refs: Vec<&[f32]> = (0..n)
        .map(|i| &feats.as_slice()[i * width..(i + 1) * width])
        .collect();
    let plan = rbnn_graph::ExecPlan::compile(&model.network, n);
    let mut plan_buffers = plan.buffers();
    let mut plan_logits = vec![0.0f32; n * classes];
    plan.replay_rows(&row_refs, &mut plan_buffers, &mut plan_logits);
    let mut plan_bitwise = bits(&plan_logits) == bits(batch_logits.as_slice());
    let k = n.min(5);
    plan.replay_rows(
        &row_refs[..k],
        &mut plan_buffers,
        &mut plan_logits[..k * classes],
    );
    plan_bitwise &=
        bits(&plan_logits[..k * classes]) == bits(&batch_logits.as_slice()[..k * classes]);

    // Float ↔ binary: sign and argmax agreement outside the tie band.
    let mut float_sign_mismatches = 0usize;
    let mut float_argmax_mismatches = 0usize;
    let mut max_dev = 0.0f32;
    for i in 0..n {
        let f = &float_logits.as_slice()[i * classes..(i + 1) * classes];
        let b = &batch_logits.as_slice()[i * classes..(i + 1) * classes];
        for (x, y) in f.iter().zip(b) {
            max_dev = max_dev.max((x - y).abs());
            // A gated sign mismatch requires *both* paths clearly away
            // from zero: if either logit sits inside the tie band, a
            // reassociation-level deviation can legitimately place the
            // pair on opposite sides of zero. With both beyond the band,
            // opposite signs mean |float − binary| > 2·band — far above
            // any observed reassociation error — i.e. a real divergence.
            if x.abs() > cfg.tie_tolerance
                && y.abs() > cfg.tie_tolerance
                && (*x >= 0.0) != (*y >= 0.0)
            {
                float_sign_mismatches += 1;
            }
        }
        if argmax(f) != batch_preds[i] {
            // Tolerate only genuine numerical ties between the top two
            // float logits.
            let mut sorted: Vec<f32> = f.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite logits"));
            if sorted[0] - sorted[1] > cfg.tie_tolerance {
                float_argmax_mismatches += 1;
            }
        }
    }

    // Path 4: noise-free RRAM sensing, batched and single-sample.
    let engine_cfg = EngineConfig::noise_free(cfg.seed ^ 0x44A5);
    let mut engine = NetworkEngine::program(&model.network, &engine_cfg);
    let rram_logits = engine.logits_batch(&feats);
    let rram_batch_bitwise = bits(rram_logits.as_slice()) == bits(batch_logits.as_slice());
    let mut rram_single_bitwise = true;
    for i in 0..n {
        let got = engine.logits(&feats.as_slice()[i * width..(i + 1) * width]);
        if bits(&got) != bits(&single_logits[i * classes..(i + 1) * classes]) {
            rram_single_bitwise = false;
        }
    }
    // Plan replay on the same noise-free fabric: fused steps mapped onto
    // the partitioned-array tile dispatch.
    let mut rram_plan_buffers = plan.buffers();
    let mut rram_plan_logits = vec![0.0f32; n * classes];
    engine.replay_plan(
        &plan,
        &row_refs,
        &mut rram_plan_buffers,
        &mut rram_plan_logits,
    );
    let rram_plan_bitwise = bits(&rram_plan_logits) == bits(batch_logits.as_slice());

    // Path 5: the serve pipeline (enqueue → batcher → worker pool).
    let (serve_bitwise, serve_rram_bitwise) = if cfg.serve {
        (
            Some(serve_agrees(
                model,
                &feats,
                &batch_logits,
                Backend::Software,
                &engine_cfg,
            )),
            Some(serve_agrees(
                model,
                &feats,
                &batch_logits,
                Backend::Rram,
                &engine_cfg,
            )),
        )
    } else {
        (None, None)
    };

    // Path 6 (statistical): deliberately marginal fabric vs margin bound.
    let noisy = if cfg.noisy {
        let mut noisy_cfg = EngineConfig::test_chip(cfg.seed ^ 0x1707);
        noisy_cfg.device.read_noise = cfg.noisy_read_noise;
        let mut noisy_engine = NetworkEngine::program(&model.network, &noisy_cfg);
        let expected = noisy_engine.expected_flips_per_sample();
        let marginal_cells = noisy_engine.marginal_cells();
        let preds = noisy_engine.classify_batch(&feats);
        let observed = preds
            .iter()
            .zip(&batch_preds)
            .filter(|(a, b)| a != b)
            .count();
        let mean = expected * n as f64;
        let bound = mean + 6.0 * mean.sqrt() + 3.0;
        Some(NoisyCheck {
            marginal_cells,
            expected_flips_per_sample: expected,
            disagreement_bound: bound,
            observed_disagreements: observed,
            within_bound: (observed as f64) <= bound,
        })
    } else {
        None
    };

    OracleReport {
        model: model.name.clone(),
        samples: n,
        float_sign_mismatches,
        float_argmax_mismatches,
        max_float_logit_dev: max_dev,
        batch_bitwise,
        plan_bitwise,
        rram_batch_bitwise,
        rram_single_bitwise,
        rram_plan_bitwise,
        serve_bitwise,
        serve_rram_bitwise,
        noisy,
    }
}

/// Pushes every sample through a freshly started server as pipelined
/// single-sample `enqueue`s plus one multi-sample window, and compares the
/// answered logits bitwise against the reference batch.
fn serve_agrees(
    model: &GeneratedModel,
    feats: &Tensor,
    reference: &Tensor,
    backend: Backend,
    engine_cfg: &EngineConfig,
) -> bool {
    let n = feats.dim(0);
    let width = feats.dim(1);
    let classes = reference.dim(1);
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, model.network.clone(), engine_cfg.clone());
    let server = Server::start(
        &registry,
        &ServeConfig {
            workers: 2,
            backend,
            ..Default::default()
        },
    );
    let handle = server.handle();

    // Pipelined single-sample requests: keep the queue deep so the
    // batcher actually forms multi-request batches.
    let mut ok = true;
    let pending: Vec<_> = (0..n)
        .map(|i| {
            handle
                .enqueue(
                    ServeTask::Ecg,
                    feats.as_slice()[i * width..(i + 1) * width].to_vec(),
                )
                .expect("enqueue")
        })
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let answer = p.wait().expect("pool answers");
        let expect = &reference.as_slice()[i * classes..(i + 1) * classes];
        if bits(&answer.logits) != bits(expect) || answer.class != argmax(expect) {
            ok = false;
        }
    }

    // One multi-sample window request through the same pipeline. The
    // answer count itself is part of the contract: a truncated or empty
    // response must fail the gate, not silently shrink the comparison.
    let window: Vec<Vec<f32>> = (0..n.min(8))
        .map(|i| feats.as_slice()[i * width..(i + 1) * width].to_vec())
        .collect();
    let answers = handle
        .classify_window(ServeTask::Ecg, window.clone())
        .expect("window served");
    if answers.len() != window.len() {
        ok = false;
    }
    for (i, answer) in answers.iter().enumerate() {
        let expect = &reference.as_slice()[i * classes..(i + 1) * classes];
        if bits(&answer.logits) != bits(expect) {
            ok = false;
        }
    }
    drop(server);
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn all_paths_agree_on_first_family_cycle() {
        // One model per family (MLP / ECG / EEG / vision), full oracle
        // including both serve backends and the noisy bound.
        let cfg = OracleConfig {
            samples: 24,
            ..Default::default()
        };
        for index in 0..4 {
            let mut model = generate(index, 0xC0FFEE);
            let report = check_model(&mut model, &cfg);
            assert!(report.passed(), "{report:?}");
            assert!(report.max_float_logit_dev < 1e-2, "{report:?}");
        }
    }

    #[test]
    fn chain_families_pass_the_full_oracle() {
        // The fused-chain families (deep 63/64/65/127/128 walks, 1-channel
        // odd-length conv fronts) through every path including both plan
        // replays.
        let cfg = OracleConfig {
            samples: 16,
            serve: false,
            noisy: false,
            ..Default::default()
        };
        for index in [4usize, 5, 10, 11] {
            let mut model = generate(index, 0xC0FFEE);
            let report = check_model(&mut model, &cfg);
            assert!(report.passed(), "{report:?}");
        }
    }

    #[test]
    fn plan_path_holds_under_forced_scalar_kernels() {
        // The same oracle legs with SIMD dispatch pinned to the scalar
        // kernels — the in-process version of the CI `RBNN_KERNELS=scalar`
        // conformance leg.
        rbnn_tensor::set_forced_scalar(true);
        let result = std::panic::catch_unwind(|| {
            let cfg = OracleConfig {
                samples: 12,
                serve: false,
                noisy: false,
                ..Default::default()
            };
            for index in [0usize, 4, 5] {
                let mut model = generate(index, 0x5CA1A);
                let report = check_model(&mut model, &cfg);
                assert!(report.passed(), "{report:?}");
            }
        });
        rbnn_tensor::clear_forced_scalar();
        if let Err(e) = result {
            std::panic::resume_unwind(e);
        }
    }

    #[test]
    fn noisy_fabric_is_actually_marginal() {
        // The statistical leg must test something: the noisy engine needs
        // a real marginal population (otherwise the bound is trivially 3).
        let cfg = OracleConfig {
            samples: 16,
            serve: false,
            ..Default::default()
        };
        let mut model = generate(0, 5);
        let report = check_model(&mut model, &cfg);
        let noisy = report.noisy.as_ref().expect("noisy leg ran");
        assert!(
            noisy.marginal_cells > 0,
            "noisy fabric produced no marginal cells: {noisy:?}"
        );
        assert!(noisy.expected_flips_per_sample >= 0.0);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn oracle_detects_a_corrupted_path() {
        // Sanity of the oracle itself: flip one stored weight bit in the
        // deployed network *after* the float reference is fixed and the
        // four binary paths must still agree with each other, but the
        // float path must now disagree somewhere — i.e. the oracle's
        // float↔binary leg has teeth.
        let cfg = OracleConfig {
            samples: 64,
            serve: false,
            noisy: false,
            ..Default::default()
        };
        let mut model = generate(0, 11);
        let baseline = check_model(&mut model, &cfg);
        assert!(baseline.passed(), "{baseline:?}");
        // Corrupt: flip a whole input column of layer 0 so many samples
        // see a changed popcount.
        for r in 0..model.network.layers()[0].weights().rows() {
            model.network.layers_mut()[0].weights_mut().flip(r, 0);
        }
        let corrupted = check_model(&mut model, &cfg);
        assert!(
            corrupted.float_sign_mismatches > 0 || corrupted.float_argmax_mismatches > 0,
            "oracle failed to notice a corrupted deployment: {corrupted:?}"
        );
        // The binary-family paths still agree among themselves (they all
        // execute the same corrupted weights).
        assert!(corrupted.batch_bitwise && corrupted.rram_batch_bitwise);
    }
}
