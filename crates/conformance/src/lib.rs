//! # rbnn-conformance
//!
//! Cross-backend conformance machinery for the RRAM-BNN reproduction.
//!
//! The paper's central systems claim is that *one* trained binarized
//! network survives translation across substrates: float training graph,
//! XNOR/popcount software inference, and 2T2R RRAM sensing with device
//! noise — degrading gracefully (not catastrophically) once bit errors
//! appear. After three PRs of aggressive hot-path rewrites the workspace
//! has four execution paths for the same model; this crate is the net that
//! lets the next rewrite proceed without fear:
//!
//! * [`generate`](mod@generate) — a seeded random **model generator** producing
//!   paper-family architectures (Dense/Conv1d/Conv2d/BatchNorm/pool stacks
//!   over ECG/EEG/vision-shaped inputs), deliberately biased toward edge
//!   shapes: 1-channel signals, odd lengths, 63/64/65-tap kernels
//!   straddling the `BitMatrix::conv1d_windows` word-gather fast path, and
//!   dense widths straddling the 64-bit word boundary;
//! * [`oracle`] — a **differential oracle** running every generated model
//!   through the four execution paths — float `rbnn-nn` forward,
//!   `BinaryNetwork` single-sample, `logits_batch`/`classify_batch`, and
//!   `NetworkEngine` RRAM sensing — plus the `rbnn-serve`
//!   enqueue/batcher pipeline, asserting bit-level agreement on noise-free
//!   fabric ([`rbnn_rram::EngineConfig::noise_free`]) and margin-model
//!   statistical bounds on noisy fabric
//!   ([`rbnn_rram::NetworkEngine::expected_flips_per_sample`]);
//! * [`campaign`] — a statistical **fault-campaign runner** sweeping
//!   accuracy vs weight bit-error rate (via [`rbnn_rram::faults`]) and
//!   program-verify margin/retry trade-offs (via [`rbnn_rram::verify`]),
//!   with confidence-interval acceptance gates anchored to the paper's
//!   Fig 4 / §II-B bit-error-tolerance claims.
//!
//! The one-command entry point is the `conformance` binary in
//! `rbnn-bench` (`cargo run --release -p rbnn-bench --bin conformance --
//! --quick --strict`), which runs ≥ 25 seeded models through the oracle,
//! runs both campaigns, archives `bench_results/conformance.json`, and
//! exits non-zero under `--strict` when any gate fails — the CI shape that
//! turns every future refactor into a one-command regression check.
//!
//! ```
//! use rbnn_conformance::{generate, oracle};
//!
//! let mut model = generate::generate(0, 0xC0DE);
//! let report = oracle::check_model(&mut model, &oracle::OracleConfig::default());
//! assert!(report.passed(), "{report:?}");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod generate;
pub mod oracle;

pub use campaign::{
    ber_sweep, planted_task, run_campaign, BerPoint, CampaignConfig, CampaignReport,
};
pub use generate::{generate, GeneratedModel, ShapeFamily};
pub use oracle::{check_model, NoisyCheck, OracleConfig, OracleReport};
