//! Seeded random generator of paper-family models.
//!
//! Each generated model is the deployment pair the paper's pipeline
//! produces: an optional float feature extractor (the part §III-C keeps in
//! full precision) and a binarized `Dense → BatchNorm → Sign` classifier,
//! already exported to its bit-packed [`BinaryNetwork`] form. Shapes are
//! drawn from the paper's three workload families (ECG/EEG 1-D signals,
//! vision 2-D) plus pure MLPs, with deliberate pressure on the edges where
//! the word-level kernels change regime:
//!
//! * 1-channel signals and odd signal lengths;
//! * convolution kernels of 63, 64 and 65 taps — straddling the
//!   [`rbnn_tensor::BitMatrix::conv1d_windows`] ≤ 64-tap word-gather fast
//!   path;
//! * dense widths of 63/64/65/127/128 features — straddling the packed
//!   `u64` word boundary of the XNOR/popcount kernels and the 32-column
//!   RRAM tile edge.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rbnn_binary::{export_classifier, BinaryNetwork};
use rbnn_nn::{
    Activation, BatchNorm, Conv1d, Conv2d, Dense, Dropout, Layer, Phase, Pool1d, Pool2d, PoolKind,
    Sequential, WeightMode,
};
use rbnn_tensor::Tensor;

/// The workload family a generated model imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeFamily {
    /// Pure MLP over a flat feature vector (the deployed ECG classifier
    /// shape of Table II).
    Mlp,
    /// 1-D convolutional front end over few-channel signals (ECG, Table
    /// II).
    Ecg,
    /// 1-D convolutional front end over multi-channel signals with
    /// pooling (EEG, Table I).
    Eeg,
    /// Small 2-D convolutional front end (the §IV vision workload).
    Vision,
    /// Deep pure-MLP chain whose widths walk the full 63/64/65/127/128
    /// packed-word edge set, so *every* fusion boundary of the op-graph
    /// executor (pack → xnor/popcount → threshold → sign-pack) sits on a
    /// word edge in some layer.
    Chain,
    /// 1-channel, odd-length conv front end feeding an edge-width chain —
    /// the other regime the fused kernels must survive: a conv-derived
    /// feature width that is nothing like a multiple of 64.
    ChainConv,
}

impl ShapeFamily {
    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            ShapeFamily::Mlp => "mlp",
            ShapeFamily::Ecg => "ecg",
            ShapeFamily::Eeg => "eeg",
            ShapeFamily::Vision => "vision",
            ShapeFamily::Chain => "chain",
            ShapeFamily::ChainConv => "chainconv",
        }
    }
}

/// One generated model: the float stack and its exported bit-packed form.
#[derive(Debug)]
pub struct GeneratedModel {
    /// Short description (family, shapes, seed) for reports.
    pub name: String,
    /// Workload family the shapes were drawn from.
    pub family: ShapeFamily,
    /// Float feature extractor (real weights; `None` for pure MLPs). Ends
    /// in `Flatten`, so its output is `[N, feature_width]`.
    pub extractor: Option<Sequential>,
    /// The binarized classifier training graph (`Dense(binary) → BatchNorm
    /// → Sign` chain, BatchNorm statistics warmed).
    pub classifier: Sequential,
    /// [`export_classifier`] output: the deployable integer-datapath
    /// network, bit-exact with `classifier` in eval phase on ±1 inputs.
    pub network: BinaryNetwork,
    /// Per-sample input shape fed to the extractor (or `[in_features]`
    /// for MLPs).
    pub input_shape: Vec<usize>,
}

impl GeneratedModel {
    /// Flat classifier input width.
    pub fn feature_width(&self) -> usize {
        self.network.in_features()
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        self.network.out_features()
    }

    /// Runs the float front end (if any) on a raw input batch and
    /// sign-binarizes the result — the `[N, feature_width]` ±1 tensor
    /// every execution path consumes. This is the hardware input
    /// interface: the classifier only ever sees ±1 features.
    pub fn binarized_features(&mut self, x: &Tensor) -> Tensor {
        match &mut self.extractor {
            Some(extractor) => extractor.forward(x, Phase::Eval).signum_binary(),
            None => x.signum_binary(),
        }
    }

    /// Draws a raw input batch of `n` samples matching `input_shape`.
    pub fn sample_inputs(&self, n: usize, rng: &mut impl Rng) -> Tensor {
        let mut dims = vec![n];
        dims.extend_from_slice(&self.input_shape);
        Tensor::randn(dims.as_slice(), 1.0, rng)
    }
}

/// Dense widths straddling the packed-word boundary and the 32-column
/// RRAM tile edge.
const EDGE_WIDTHS: [usize; 6] = [63, 64, 65, 127, 128, 33];

/// Kernel taps straddling the `conv1d_windows` ≤ 64-tap word-gather fast
/// path.
const EDGE_KERNELS: [usize; 3] = [63, 64, 65];

/// The packed-word boundary walk of the [`ShapeFamily::Chain`] families:
/// every width the fused executor kernels change regime at.
const CHAIN_WIDTHS: [usize; 5] = [63, 64, 65, 127, 128];

fn pick<T: Copy>(options: &[T], rng: &mut StdRng) -> T {
    options[rng.gen_range(0..options.len())]
}

/// Draws a hidden width: mostly word-edge sizes, sometimes odd random.
fn hidden_width(rng: &mut StdRng) -> usize {
    if rng.gen_bool(0.6) {
        pick(&EDGE_WIDTHS, rng)
    } else {
        rng.gen_range(17..96) | 1 // odd
    }
}

/// Builds the binarized classifier chain for `dims` widths, dropout
/// interleaved occasionally (identity at inference, exercised at export).
fn build_classifier(dims: &[usize], rng: &mut StdRng) -> Sequential {
    let mut seq = Sequential::new();
    for (i, pair) in dims.windows(2).enumerate() {
        if i > 0 {
            seq.push(Activation::sign_ste());
        }
        if rng.gen_bool(0.3) {
            seq.push(Dropout::new(0.85, rng.gen()));
        }
        seq.push(Dense::new(pair[0], pair[1], WeightMode::Binary, rng).without_bias());
        seq.push(BatchNorm::new(pair[1]));
    }
    seq
}

/// Generates the `index`-th model of the seeded stream.
///
/// Deterministic: the same `(index, seed)` always produces the same model
/// (architecture, weights, and warmed BatchNorm statistics). Families
/// cycle with `index` so any run of ≥ 6 consecutive indices covers all
/// six; edge shapes are guaranteed early (index 0 exercises a
/// 65-feature word-boundary MLP, the 1-D indices among 0..8 cover all of
/// the 63/64/65-tap kernels, and the chain families at indices 4 and 5
/// mod 6 rotate through the full 63/64/65/127/128 fusion-boundary walk).
pub fn generate(index: usize, seed: u64) -> GeneratedModel {
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(index as u64),
    );
    let family = match index % 6 {
        0 => ShapeFamily::Mlp,
        1 => ShapeFamily::Ecg,
        2 => ShapeFamily::Eeg,
        3 => ShapeFamily::Vision,
        4 => ShapeFamily::Chain,
        _ => ShapeFamily::ChainConv,
    };

    let (extractor, input_shape, feature_width, shape_label) = match family {
        ShapeFamily::Mlp => {
            // Flat features; index 0 pins the 64/65 word boundary.
            let f = if index == 0 {
                65
            } else if rng.gen_bool(0.5) {
                pick(&EDGE_WIDTHS, &mut rng)
            } else {
                rng.gen_range(33..256) | 1
            };
            (None, vec![f], f, format!("f{f}"))
        }
        ShapeFamily::Ecg | ShapeFamily::Eeg => {
            // 1-D signal: ECG leans on 1 channel and huge (edge) kernels,
            // EEG on more channels plus pooling.
            let channels = if family == ShapeFamily::Ecg {
                if rng.gen_bool(0.5) {
                    1
                } else {
                    rng.gen_range(1..4)
                }
            } else {
                rng.gen_range(2..5)
            };
            // Odd lengths; long enough for the largest kernels.
            let len = rng.gen_range(75..160) | 1;
            // Early indices walk the 63/64/65-tap edge set exhaustively
            // (the 1-D families sit at indices 1, 2, 5, 6, …, so the
            // rotated lookup covers all three within the first 8 indices);
            // later indices still revisit the edges half the time.
            let kernel = if index < 12 {
                EDGE_KERNELS[(index / 4 + index) % EDGE_KERNELS.len()]
            } else if rng.gen_bool(0.5) {
                pick(&EDGE_KERNELS, &mut rng)
            } else {
                pick(&[3usize, 5, 7, 13], &mut rng)
            };
            let out_channels = rng.gen_range(2..5);
            let mut seq = Sequential::new();
            seq.push(Conv1d::new(
                channels,
                out_channels,
                kernel,
                1,
                0,
                WeightMode::Real,
                &mut rng,
            ));
            seq.push(Activation::relu());
            let mut out_len = len - kernel + 1;
            if family == ShapeFamily::Eeg && out_len >= 4 {
                seq.push(Pool1d::new(PoolKind::Avg, 2, 2));
                out_len = (out_len - 2) / 2 + 1;
            }
            seq.push(rbnn_nn::Flatten::new());
            let f = out_channels * out_len;
            (
                Some(seq),
                vec![channels, len],
                f,
                format!("c{channels}l{len}k{kernel}"),
            )
        }
        ShapeFamily::Vision => {
            let channels = pick(&[1usize, 3], &mut rng);
            let side = rng.gen_range(8..14) | 1; // odd sides
            let k = pick(&[2usize, 3], &mut rng);
            let out_channels = rng.gen_range(2..6);
            let mut seq = Sequential::new();
            seq.push(Conv2d::new(
                channels,
                out_channels,
                (k, k),
                (1, 1),
                (0, 0),
                WeightMode::Real,
                &mut rng,
            ));
            seq.push(Activation::relu());
            let mut out_side = side - k + 1;
            if out_side >= 4 {
                seq.push(Pool2d::new(PoolKind::Max, (2, 2), (2, 2)));
                out_side = (out_side - 2) / 2 + 1;
            }
            seq.push(rbnn_nn::Flatten::new());
            let f = out_channels * out_side * out_side;
            (
                Some(seq),
                vec![channels, side, side],
                f,
                format!("c{channels}s{side}k{k}"),
            )
        }
        ShapeFamily::Chain => {
            // Input width rotates through the edge set with the stream, so
            // the *front* fusion boundary is walked too.
            let f = CHAIN_WIDTHS[(index / 6) % CHAIN_WIDTHS.len()];
            (None, vec![f], f, format!("f{f}"))
        }
        ShapeFamily::ChainConv => {
            // 1-channel, odd-length signal through an edge-tap kernel: the
            // conv-derived feature width is nothing like a word multiple.
            let kernel = EDGE_KERNELS[(index / 6) % EDGE_KERNELS.len()];
            let len = (kernel + rng.gen_range(12..48)) | 1;
            let out_channels = rng.gen_range(2..4usize);
            let mut seq = Sequential::new();
            seq.push(Conv1d::new(
                1,
                out_channels,
                kernel,
                1,
                0,
                WeightMode::Real,
                &mut rng,
            ));
            seq.push(Activation::relu());
            seq.push(rbnn_nn::Flatten::new());
            let f = out_channels * (len - kernel + 1);
            (Some(seq), vec![1, len], f, format!("c1l{len}k{kernel}"))
        }
    };

    // Classifier widths: 1–2 binarized hidden layers, 2–6 classes — except
    // the chain families, whose hidden widths deterministically walk the
    // packed-word edge set so every fusion boundary sits on a word edge in
    // some layer.
    let mut dims = vec![feature_width];
    match family {
        ShapeFamily::Chain => {
            let start = (index / 6) % CHAIN_WIDTHS.len();
            for step in 1..=CHAIN_WIDTHS.len() {
                dims.push(CHAIN_WIDTHS[(start + step) % CHAIN_WIDTHS.len()]);
            }
        }
        ShapeFamily::ChainConv => {
            let start = (index / 6) % CHAIN_WIDTHS.len();
            for step in 0..3 {
                dims.push(CHAIN_WIDTHS[(start + step) % CHAIN_WIDTHS.len()]);
            }
        }
        _ => {
            for _ in 0..rng.gen_range(1..3usize) {
                dims.push(hidden_width(&mut rng));
            }
        }
    }
    dims.push(rng.gen_range(2..7usize));
    let mut classifier = build_classifier(&dims, &mut rng);

    // Warm BatchNorm running statistics on the distribution the classifier
    // will actually see: binarized extractor features of random inputs.
    let mut extractor = extractor;
    for _ in 0..20 {
        let mut raw_dims = vec![16usize];
        raw_dims.extend_from_slice(&input_shape);
        let raw = Tensor::randn(raw_dims.as_slice(), 1.0, &mut rng);
        let feats = match &mut extractor {
            Some(e) => e.forward(&raw, Phase::Eval).signum_binary(),
            None => raw.signum_binary(),
        };
        let _ = classifier.forward(&feats, Phase::Train);
    }

    let network = export_classifier(&classifier).expect("generated chain is exportable");
    let name = format!(
        "{}-{}-{}[i{index},s{seed}]",
        family.name(),
        shape_label,
        dims.iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("x"),
    );
    GeneratedModel {
        name,
        family,
        extractor,
        classifier,
        network,
        input_shape,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for index in 0..4 {
            let a = generate(index, 7);
            let b = generate(index, 7);
            assert_eq!(a.name, b.name);
            assert_eq!(a.network, b.network, "index {index}");
        }
    }

    #[test]
    fn families_cycle_and_edges_are_covered() {
        let mut kernels_seen = Vec::new();
        for index in 0..4 {
            let m = generate(index, 1);
            match index % 4 {
                0 => assert_eq!(m.family, ShapeFamily::Mlp),
                1 => assert_eq!(m.family, ShapeFamily::Ecg),
                2 => assert_eq!(m.family, ShapeFamily::Eeg),
                _ => assert_eq!(m.family, ShapeFamily::Vision),
            }
            if let Some(k) = m.name.split('k').nth(1) {
                let k: String = k.chars().take_while(|c| c.is_ascii_digit()).collect();
                kernels_seen.push(k.parse::<usize>().unwrap());
            }
        }
        // Indices 1 and 2 pin two of the 63/64/65-tap edge kernels.
        assert!(kernels_seen.iter().any(|&k| k >= 63 && k <= 65));
        // Index 0 pins the 65-feature word-boundary MLP.
        let m0 = generate(0, 1);
        assert_eq!(m0.feature_width(), 65);
    }

    #[test]
    fn chain_families_walk_every_fusion_boundary_width() {
        // Index 4 (mod 6) is the deep edge-width chain: every width of the
        // 63/64/65/127/128 walk must appear as some layer's input width,
        // i.e. at some fusion boundary of the lowered op graph.
        let m = generate(4, 1);
        assert_eq!(m.family, ShapeFamily::Chain);
        let widths: Vec<usize> = m.network.layers().iter().map(|l| l.in_features()).collect();
        for w in CHAIN_WIDTHS {
            assert!(
                widths.contains(&w),
                "chain model missing edge width {w}: {widths:?}"
            );
        }

        // Index 5 (mod 6) is the 1-channel odd-length conv front.
        let c = generate(5, 1);
        assert_eq!(c.family, ShapeFamily::ChainConv);
        assert_eq!(c.input_shape[0], 1, "single-channel front");
        assert_eq!(c.input_shape[1] % 2, 1, "odd signal length");
        // Its classifier still walks edge widths past the conv width.
        let widths: Vec<usize> = c.network.layers().iter().map(|l| l.in_features()).collect();
        assert!(
            widths.iter().filter(|w| CHAIN_WIDTHS.contains(w)).count() >= 2,
            "conv chain missing edge widths: {widths:?}"
        );

        // The rotation is deterministic.
        assert_eq!(generate(4, 1).name, generate(4, 1).name);
    }

    #[test]
    fn exported_network_matches_declared_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for index in 0..8 {
            let mut m = generate(index, 3);
            let x = m.sample_inputs(5, &mut rng);
            let feats = m.binarized_features(&x);
            assert_eq!(feats.dims(), &[5, m.feature_width()], "{}", m.name);
            assert!(m.classes() >= 2);
            // Features really are ±1.
            assert!(feats.as_slice().iter().all(|v| v.abs() == 1.0));
        }
    }
}
