//! Statistical fault campaigns with confidence-interval gates.
//!
//! Two sweeps, both anchored to the paper's §II-B / Fig 4 claims:
//!
//! * **accuracy vs BER** — i.i.d. weight bit flips
//!   ([`rbnn_rram::faults`]) injected into a deployed classifier at a
//!   ladder of bit-error rates, repeated over independent flip draws, with
//!   Wilson confidence intervals on the pooled trial outcomes. The
//!   acceptance gate pins the paper's graceful-degradation anchor: at the
//!   post-2T2R BER of the worst Fig 4 checkpoint (the closed-form
//!   [`rbnn_rram::endurance::analytic_point`] at 7×10⁸ cycles), the
//!   accuracy drop must stay ≤ 0.5 pt — the "no ECC needed" argument.
//! * **program-verify trade-off** — the margin/retry controller of
//!   [`rbnn_rram::verify`] on worn 2T2R synapses: verification must buy a
//!   clearly lower residual read-error rate at a measurably higher
//!   programming-pulse (energy/wear) cost.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use rbnn_binary::{export_classifier, BinaryNetwork};
use rbnn_nn::{train, Activation, Adam, BatchNorm, Dense, Sequential, WeightMode};
use rbnn_rram::{endurance, faults, verify, DeviceParams, Pcsa, PcsaParams, Synapse2T2R};
use rbnn_tensor::Tensor;

/// Wilson score interval for a binomial proportion at confidence `z`
/// (1.96 ≈ 95%). Returns `(low, high)`; degenerate `(0, 1)` on zero
/// trials.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// One point of the accuracy-vs-BER curve.
#[derive(Debug, Clone, Serialize)]
pub struct BerPoint {
    /// Injected weight bit-error rate.
    pub ber: f64,
    /// Independent flip-pattern repetitions.
    pub reps: usize,
    /// Pooled classification trials (`reps × samples`).
    pub trials: u64,
    /// Mean accuracy over the pooled trials.
    pub mean_accuracy: f64,
    /// Wilson 95% lower bound on the accuracy.
    pub ci_low: f64,
    /// Wilson 95% upper bound on the accuracy.
    pub ci_high: f64,
    /// Mean injected flips per repetition.
    pub mean_flips: f64,
}

/// Sweeps accuracy vs weight BER: for each rate, `reps` independent
/// corrupted clones of `network` classify `features` and are scored
/// against `labels`; outcomes pool into one Wilson interval per rate.
///
/// # Panics
///
/// Panics if `features` is not `[N, in_features]` with `N == labels.len()`.
pub fn ber_sweep(
    network: &BinaryNetwork,
    features: &Tensor,
    labels: &[usize],
    bers: &[f64],
    reps: usize,
    seed: u64,
) -> Vec<BerPoint> {
    assert_eq!(features.dim(0), labels.len(), "label count mismatch");
    let mut rng = StdRng::seed_from_u64(seed);
    bers.iter()
        .map(|&ber| {
            let mut correct = 0u64;
            let mut flips_total = 0usize;
            for _ in 0..reps {
                let mut corrupted = network.clone();
                flips_total += faults::inject_network(&mut corrupted, ber, &mut rng);
                let preds = corrupted.classify_batch(features);
                correct += preds.iter().zip(labels).filter(|(p, y)| p == y).count() as u64;
            }
            let trials = (reps * labels.len()) as u64;
            let (ci_low, ci_high) = wilson_interval(correct, trials, 1.96);
            BerPoint {
                ber,
                reps,
                trials,
                mean_accuracy: correct as f64 / trials.max(1) as f64,
                ci_low,
                ci_high,
                mean_flips: flips_total as f64 / reps.max(1) as f64,
            }
        })
        .collect()
}

/// One program-verify operating point.
#[derive(Debug, Clone, Serialize)]
pub struct VerifyPoint {
    /// Operating-point label.
    pub label: String,
    /// Retry budget.
    pub max_attempts: u32,
    /// Guard-band margin (log-resistance units).
    pub margin: f64,
    /// Program/read trials.
    pub trials: u64,
    /// Observed read errors after programming.
    pub errors: u64,
    /// Residual bit-error rate.
    pub residual_ber: f64,
    /// Wilson 95% bounds on the residual BER.
    pub ci_low: f64,
    /// Upper bound.
    pub ci_high: f64,
    /// Mean programming pulses per weight write (the energy/wear cost).
    pub mean_pulses: f64,
}

/// Sweeps the program-verify controller on a worn 2T2R synapse: each
/// operating point alternately writes both weight polarities at `cycles`
/// wear and reads back through a PCSA, mirroring the Fig 4 protocol.
pub fn verify_sweep(
    points: &[(&str, verify::VerifyConfig)],
    cycles: u64,
    trials: usize,
    seed: u64,
) -> Vec<VerifyPoint> {
    let params = DeviceParams::hfo2_default();
    let mut rng = StdRng::seed_from_u64(seed);
    let pcsa = Pcsa::new(&PcsaParams::default_130nm(), &mut rng);
    points
        .iter()
        .map(|(label, cfg)| {
            let mut synapse = Synapse2T2R::new(true, &params, &mut rng);
            let mut errors = 0u64;
            let mut pulses = 0u64;
            for t in 0..trials {
                let weight = t % 2 == 0;
                synapse.set_cycles(cycles);
                let out =
                    verify::program_synapse_verified(&mut synapse, weight, cfg, &params, &mut rng);
                pulses += out.attempts as u64;
                if synapse.read(&pcsa, &params, &mut rng) != weight {
                    errors += 1;
                }
            }
            let (ci_low, ci_high) = wilson_interval(errors, trials as u64, 1.96);
            VerifyPoint {
                label: label.to_string(),
                max_attempts: cfg.max_attempts,
                margin: cfg.margin,
                trials: trials as u64,
                errors,
                residual_ber: errors as f64 / trials.max(1) as f64,
                ci_low,
                ci_high,
                mean_pulses: pulses as f64 / trials.max(1) as f64,
            }
        })
        .collect()
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Classifier layer widths (input features through classes).
    pub dims: Vec<usize>,
    /// Training samples for the planted-template task.
    pub train_samples: usize,
    /// Held-out evaluation samples.
    pub samples: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Per-feature agreement probability of the planted task (0.5 =
    /// unlearnable noise, 1.0 = trivially separable).
    pub planted_p: f32,
    /// Independent flip repetitions per BER point.
    pub reps: usize,
    /// Program/read trials per verify operating point.
    pub verify_trials: usize,
    /// Wear level of the verify sweep (Fig 4's endpoint).
    pub cycles: u64,
    /// Master seed.
    pub seed: u64,
}

impl CampaignConfig {
    /// Laptop/CI-scale settings (seconds).
    pub fn quick(seed: u64) -> Self {
        Self {
            dims: vec![512, 64, 2],
            train_samples: 768,
            samples: 256,
            epochs: 4,
            planted_p: 0.57,
            reps: 24,
            verify_trials: 24_000,
            cycles: 700_000_000,
            seed,
        }
    }

    /// Deeper statistics (minutes).
    pub fn full(seed: u64) -> Self {
        Self {
            dims: vec![1024, 96, 2],
            train_samples: 2048,
            samples: 512,
            epochs: 8,
            planted_p: 0.57,
            reps: 64,
            verify_trials: 120_000,
            cycles: 700_000_000,
            seed,
        }
    }
}

/// The planted-template binary task shared by the training benches and
/// the fault campaign (one definition — `train_bench` consumes this too):
/// each sample agrees with ±`template` per feature with probability `p`,
/// so the Bayes classifier is a template match whose confidence grows
/// with `√features · (2p − 1)`. Returns `(train_x, train_y, val_x,
/// val_y)`; inputs are ±1, the hardware interface.
pub fn planted_task(
    features: usize,
    train_n: usize,
    val_n: usize,
    p: f32,
    seed: u64,
) -> (Tensor, Vec<usize>, Tensor, Vec<usize>) {
    let rng = &mut StdRng::seed_from_u64(seed);
    let template: Vec<f32> = (0..features)
        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
        .collect();
    let mut draw = |n: usize| {
        let mut x = Tensor::zeros([n, features]);
        let mut y = Vec::with_capacity(n);
        let xs = x.as_mut_slice();
        for i in 0..n {
            let class = i % 2;
            let sign = if class == 1 { 1.0 } else { -1.0 };
            for (v, &t) in xs[i * features..(i + 1) * features]
                .iter_mut()
                .zip(&template)
            {
                *v = if rng.gen::<f32>() < p {
                    sign * t
                } else {
                    -sign * t
                };
            }
            y.push(class);
        }
        (x, y)
    };
    let (xt, yt) = draw(train_n);
    let (xv, yv) = draw(val_n);
    (xt, yt, xv, yv)
}

/// Trains a binarized `Dense → BatchNorm → Sign` classifier on the planted
/// task and exports it; returns the deployed network with its held-out
/// evaluation set. The campaign measures fault tolerance on a *trained*
/// model — the paper's claim is about classifiers with real decision
/// margins, not prediction stability of random weights.
fn trained_network(cfg: &CampaignConfig) -> (BinaryNetwork, Tensor, Vec<usize>) {
    let (xt, yt, xv, yv) = planted_task(
        cfg.dims[0],
        cfg.train_samples,
        cfg.samples,
        cfg.planted_p,
        cfg.seed ^ 0x7124,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7125);
    let mut model = Sequential::new();
    for (i, pair) in cfg.dims.windows(2).enumerate() {
        if i > 0 {
            model.push(Activation::sign_ste());
        }
        model.push(Dense::new(pair[0], pair[1], WeightMode::Binary, &mut rng).without_bias());
        model.push(BatchNorm::new(pair[1]));
    }
    let mut opt = Adam::new(0.01);
    let train_cfg = train::TrainConfig {
        epochs: cfg.epochs,
        batch_size: 32,
        seed: cfg.seed ^ 0x5EED,
        verbose: false,
        ..Default::default()
    };
    let _ = train::fit(
        &mut model,
        train::Labelled::new(&xt, &yt),
        Some(train::Labelled::new(&xv, &yv)),
        &mut opt,
        &train_cfg,
    );
    let network = export_classifier(&model).expect("trained chain is exportable");
    (network, xv, yv)
}

/// Full campaign outcome with its two acceptance gates.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignReport {
    /// Layer widths of the swept classifier.
    pub dims: Vec<usize>,
    /// Clean (BER 0) held-out accuracy of the trained classifier.
    pub clean_accuracy: f64,
    /// The paper anchor: closed-form post-2T2R BER at the worst Fig 4
    /// checkpoint (7×10⁸ cycles).
    pub anchor_ber: f64,
    /// Accuracy drop (vs clean) at the anchor BER, in fraction points.
    pub anchor_drop: f64,
    /// Wilson-upper-bounded drop at the anchor BER.
    pub anchor_drop_ci_high: f64,
    /// Gate: mean anchor drop ≤ 0.5 pt with a pooled 95% interval no
    /// wider than 1 pt (enough trials for the claim to mean something).
    pub anchor_ok: bool,
    /// Accuracy at the full-scramble positive control (BER 0.5 — every
    /// weight an unbiased coin, all trained structure destroyed).
    pub scramble_accuracy: f64,
    /// Gate (positive control): the BER-0.5 scramble must collapse
    /// accuracy toward the 50% chance floor. Without this, an injection
    /// or evaluation path that silently stopped corrupting weights would
    /// make the anchor gate vacuously green; together the pair pins the
    /// graceful-degradation *shape* — unharmed at the anchor, destroyed
    /// at full scramble.
    pub scramble_ok: bool,
    /// The swept accuracy-vs-BER curve (anchor first, then the ladder,
    /// scramble control last).
    pub ber_curve: Vec<BerPoint>,
    /// The program-verify trade-off points.
    pub verify_curve: Vec<VerifyPoint>,
    /// Gate: verification suppresses errors (robust count ratio) at a
    /// strictly higher pulse cost.
    pub verify_ok: bool,
}

impl CampaignReport {
    /// All three campaign gates.
    pub fn passed(&self) -> bool {
        self.anchor_ok && self.scramble_ok && self.verify_ok
    }
}

/// Runs both campaigns: trains a classifier on the planted task, sweeps
/// its held-out accuracy against weight BER with the Fig 4 anchor gate,
/// then sweeps the program-verify controller.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let (network, features, labels) = trained_network(cfg);
    let clean_accuracy = network.accuracy(&features, &labels) as f64;

    let anchor_ber = endurance::analytic_point(
        &DeviceParams::hfo2_default(),
        &PcsaParams::default_130nm(),
        cfg.cycles,
        1.15,
    )
    .ber_2t2r;
    let mut bers = vec![anchor_ber];
    bers.extend([1e-3, 1e-2, 0.05, 0.1, 0.5]);
    let ber_curve = ber_sweep(
        &network,
        &features,
        &labels,
        &bers,
        cfg.reps,
        cfg.seed ^ 0xF11,
    );
    let anchor = &ber_curve[0];
    let anchor_drop = clean_accuracy - anchor.mean_accuracy;
    let anchor_drop_ci_high = clean_accuracy - anchor.ci_low;
    // Gate: the mean drop clears 0.5 pt AND the pooled interval is tight
    // enough (≤ 1 pt wide) for that claim to be statistically meaningful.
    let anchor_ok = anchor_drop <= 0.005 && (anchor.ci_high - anchor.ci_low) <= 0.01;
    // Positive control: BER 0.5 scrambles every weight to a fair coin, so
    // predictions decorrelate from labels and accuracy must fall to the
    // ~50% two-class chance floor (0.7 leaves generous slack above the
    // pooled CI). If this fires, fault injection or the accuracy meter —
    // the instruments the anchor gate relies on — has broken.
    let scramble = ber_curve.last().expect("scramble point swept");
    let scramble_accuracy = scramble.mean_accuracy;
    let scramble_ok = scramble_accuracy <= 0.7;

    let verify_curve = verify_sweep(
        &[
            ("no-verify", verify::VerifyConfig::none()),
            ("standard", verify::VerifyConfig::standard()),
            (
                "aggressive",
                verify::VerifyConfig {
                    max_attempts: 8,
                    margin: 1.0,
                },
            ),
        ],
        cfg.cycles,
        cfg.verify_trials,
        cfg.seed ^ 0x7E4,
    );
    // Robust count-ratio gate (mirrors the verify module's own test): the
    // standard controller must cut errors well below the unverified
    // baseline and must spend strictly more pulses doing it.
    let none = &verify_curve[0];
    let standard = &verify_curve[1];
    let verify_ok =
        standard.errors * 2 < none.errors.max(4) && standard.mean_pulses > none.mean_pulses;

    CampaignReport {
        dims: cfg.dims.clone(),
        clean_accuracy,
        anchor_ber,
        anchor_drop,
        anchor_drop_ci_high,
        anchor_ok,
        scramble_accuracy,
        scramble_ok,
        ber_curve,
        verify_curve,
        verify_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbnn_serve::demo_network;

    #[test]
    fn wilson_interval_behaves() {
        let (lo, hi) = wilson_interval(0, 0, 1.96);
        assert_eq!((lo, hi), (0.0, 1.0));
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo > 0.39 && lo < 0.5, "{lo}");
        assert!(hi > 0.5 && hi < 0.61, "{hi}");
        // Zero successes still have a nonzero upper bound ("rule of
        // three" flavour).
        let (lo, hi) = wilson_interval(0, 1000, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.0 && hi < 0.01, "{hi}");
        // Interval tightens with more trials.
        let wide = wilson_interval(5, 50, 1.96);
        let tight = wilson_interval(100, 1000, 1.96);
        assert!((tight.1 - tight.0) < (wide.1 - wide.0));
    }

    #[test]
    fn ber_zero_keeps_accuracy_exact() {
        let network = demo_network(&[96, 16, 3], 1);
        let mut rng = StdRng::seed_from_u64(2);
        let features = Tensor::randn([40, 96], 1.0, &mut rng);
        let labels = network.classify_batch(&features);
        let points = ber_sweep(&network, &features, &labels, &[0.0], 3, 3);
        assert_eq!(points[0].mean_accuracy, 1.0);
        assert_eq!(points[0].mean_flips, 0.0);
    }

    #[test]
    fn degradation_is_monotone_in_expectation() {
        let network = demo_network(&[256, 32, 4], 4);
        let mut rng = StdRng::seed_from_u64(5);
        let features = Tensor::randn([96, 256], 1.0, &mut rng);
        let labels = network.classify_batch(&features);
        let points = ber_sweep(&network, &features, &labels, &[1e-4, 0.05, 0.4], 12, 6);
        // Tiny BER barely moves accuracy; heavy BER must hurt it.
        assert!(points[0].mean_accuracy > 0.99, "{:?}", points[0]);
        assert!(
            points[2].mean_accuracy < points[0].mean_accuracy,
            "{points:?}"
        );
        // Flip counts scale with BER.
        assert!(points[2].mean_flips > points[1].mean_flips);
    }

    #[test]
    fn quick_campaign_passes_its_gates() {
        // Reduced-scale end-to-end campaign: the paper-anchor and verify
        // gates must hold (this is the same code path CI gates via
        // `conformance --quick --strict`).
        let mut cfg = CampaignConfig::quick(9);
        cfg.reps = 16;
        cfg.verify_trials = 10_000;
        let report = run_campaign(&cfg);
        assert!(
            report.clean_accuracy > 0.9,
            "planted task should train well: {}",
            report.clean_accuracy
        );
        assert!(
            report.anchor_ok,
            "anchor drop {} (ci high {}) at BER {:.2e}",
            report.anchor_drop, report.anchor_drop_ci_high, report.anchor_ber
        );
        assert!(report.verify_ok, "{:?}", report.verify_curve);
        // The positive control must register real damage at full
        // scramble — this is what keeps the anchor gate non-vacuous.
        assert!(
            report.scramble_ok,
            "BER 0.5 should collapse accuracy to chance: {}",
            report.scramble_accuracy
        );
        assert!(report.passed());
        // The curve itself must show graceful (not cliff) degradation:
        // percent-scale BER still classifies far above the 50% chance
        // floor of the two-class task.
        let at_1e2 = report
            .ber_curve
            .iter()
            .find(|p| (p.ber - 1e-2).abs() < 1e-9)
            .expect("1e-2 point");
        assert!(at_1e2.mean_accuracy > 0.7, "{at_1e2:?}");
    }
}
