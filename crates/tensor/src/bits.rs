//! Bit-packed ±1 vectors and matrices with XNOR/popcount kernels.
//!
//! A binarized neural network layer evaluates Eq. 3 of the paper,
//! `y = sign(popcount(XNOR(w, x)) − b)`: weights and activations take values
//! in {−1, +1}, encoded here as single bits (`1 ↔ +1`, `0 ↔ −1`) packed into
//! `u64` words. The XNOR of two bits is `1` exactly when the corresponding
//! ±1 values multiply to +1, so the ±1 dot product of two length-`n` vectors
//! is `2·popcount(XNOR) − n`.

use std::fmt;

use crate::kernels::{pack, popcount};

const WORD_BITS: usize = 64;

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// Mask with ones in the valid bit positions of the final word.
#[inline]
fn tail_mask(len: usize) -> u64 {
    let rem = len % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Fills `words` from a bit predicate over `0..len`, branchlessly.
#[inline]
fn pack_words(words: &mut [u64], len: usize, bit: impl Fn(usize) -> bool) {
    for (w, word) in words.iter_mut().enumerate() {
        let base = w * WORD_BITS;
        let n = WORD_BITS.min(len - base);
        let mut acc = 0u64;
        for i in 0..n {
            acc |= (bit(base + i) as u64) << i;
        }
        *word = acc;
    }
}

/// ORs the low `nbits ≤ 64` bits of `value` into `words` starting at bit
/// position `pos` (destination bits assumed clear; may straddle two words).
#[inline]
fn write_bits(words: &mut [u64], pos: usize, nbits: usize, value: u64) {
    debug_assert!(nbits <= WORD_BITS);
    let w = pos / WORD_BITS;
    let shift = pos % WORD_BITS;
    words[w] |= value << shift;
    if shift != 0 && shift + nbits > WORD_BITS {
        words[w + 1] |= value >> (WORD_BITS - shift);
    }
}

/// Counts positions where `a` and `b` hold the same bit, over `len` bits.
///
/// This is `popcount(XNOR(a, b))` restricted to the first `len` bits; the
/// corresponding ±1 dot product is `2 · xnor_popcount(a, b, len) − len`.
///
/// # Panics
///
/// Panics if either slice is shorter than `len` bits requires.
#[inline]
pub fn xnor_popcount(a: &[u64], b: &[u64], len: usize) -> u32 {
    let nw = words_for(len);
    assert!(
        a.len() >= nw && b.len() >= nw,
        "operand shorter than {len} bits"
    );
    // Full words go through the runtime-dispatched kernel (scalar oracle /
    // AVX2 Harley-Seal / AVX-512 VPOPCNTDQ — all bitwise equal), then the
    // partially occupied tail word is masked and counted once. Slicing to
    // `full` words here means the SIMD kernels never see tail or
    // out-of-range words.
    let full = if len % WORD_BITS == 0 { nw } else { nw - 1 };
    let mut count = popcount::xnor_popcount_words(&a[..full], &b[..full]);
    if full < nw {
        count += ((!(a[full] ^ b[full])) & tail_mask(len)).count_ones();
    }
    count
}

/// Packs the signs of `values` into caller-provided `words` via the
/// canonical [`sign_bit`](crate::sign_bit) predicate (`x ≥ 0` → bit 1 /
/// value +1), through the runtime-dispatched packing kernel. Tail bits
/// beyond `values.len()` are written as zero.
///
/// This is the word-level entry the op-graph executor uses to pack input
/// rows directly into an execution-plan arena with no intermediate
/// [`BitVec`]/[`BitMatrix`]; it produces exactly the words
/// [`BitVec::from_signs`] would.
///
/// # Panics
///
/// Panics unless `words.len() == values.len().div_ceil(64)`.
#[inline]
pub fn pack_signs_into(values: &[f32], words: &mut [u64]) {
    pack::pack_signs(values, words);
}

/// A bit-packed vector of ±1 values (`1 ↔ +1`, `0 ↔ −1`).
///
/// ```
/// use rbnn_tensor::BitVec;
///
/// let w = BitVec::from_signs(&[1.0, -1.0, 1.0, 1.0]);
/// let x = BitVec::from_signs(&[1.0, 1.0, -1.0, 1.0]);
/// // ±1 dot product: 1·1 + (−1)·1 + 1·(−1) + 1·1 = 0
/// assert_eq!(w.dot_pm1(&x), 0);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero (all −1) vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; words_for(len)],
            len,
        }
    }

    /// Packs the signs of a float slice via the canonical
    /// [`sign_bit`](crate::sign_bit) predicate (`x ≥ 0` becomes bit 1 /
    /// value +1, NaN → −1, `-0.0` → +1, matching
    /// [`Tensor::signum_binary`](crate::Tensor::signum_binary)).
    ///
    /// Word-at-a-time, branchless, and runtime-dispatched to the AVX
    /// movemask kernel where the host supports it: sign-random data would
    /// mispredict a per-bit branch on nearly every element, which once
    /// dominated the whole inference hot path.
    pub fn from_signs(values: &[f32]) -> Self {
        let mut v = Self::zeros(values.len());
        pack::pack_signs(values, &mut v.words);
        v
    }

    /// Builds a vector of `len` bits from pre-packed words (e.g. a row of
    /// an execution-plan arena). Bits beyond `len` in the final word are
    /// masked off, so callers may pass words whose tail bits are stale.
    ///
    /// # Panics
    ///
    /// Panics unless `words.len() == len.div_ceil(64)`.
    pub fn from_words(words: &[u64], len: usize) -> Self {
        assert!(
            words.len() == words_for(len),
            "from_words: words/len mismatch"
        );
        let mut v = Self {
            words: words.to_vec(),
            len,
        };
        if let Some(last) = v.words.last_mut() {
            *last &= tail_mask(len);
        }
        v
    }

    /// Packs a boolean slice.
    pub fn from_bools(values: &[bool]) -> Self {
        let mut v = Self::zeros(values.len());
        pack_words(&mut v.words, values.len(), |i| values[i]);
        v
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit at position `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flips bit `i` (used by the RRAM fault-injection model).
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn flip(&mut self, i: usize) {
        assert!(
            i < self.len,
            "bit index {i} out of range for length {}",
            self.len
        );
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// Number of set bits (+1 values).
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of set bits among the first `n` positions.
    ///
    /// # Panics
    ///
    /// Panics if `n > len`.
    #[inline]
    pub fn count_ones_first(&self, n: usize) -> u32 {
        assert!(n <= self.len, "prefix {n} longer than vector {}", self.len);
        if n == 0 {
            return 0;
        }
        let full = n / WORD_BITS;
        let mut count: u32 = self.words[..full].iter().map(|w| w.count_ones()).sum();
        let rem = n % WORD_BITS;
        if rem != 0 {
            count += (self.words[full] & ((1u64 << rem) - 1)).count_ones();
        }
        count
    }

    /// Copies `take` bits starting at `start` into a fresh vector of length
    /// `out_len ≥ take`, zero-padded at the tail — the word-level kernel
    /// behind tiled engines slicing a batch input across column tiles.
    ///
    /// # Panics
    ///
    /// Panics if `start + take > len` or `take > out_len`.
    pub fn slice_padded(&self, start: usize, take: usize, out_len: usize) -> BitVec {
        assert!(
            start + take <= self.len,
            "slice {start}+{take} exceeds length {}",
            self.len
        );
        assert!(
            take <= out_len,
            "slice of {take} bits cannot fit output of {out_len}"
        );
        let mut out = BitVec::zeros(out_len);
        if take == 0 {
            return out;
        }
        let word0 = start / WORD_BITS;
        let shift = start % WORD_BITS;
        let out_words = take.div_ceil(WORD_BITS);
        for w in 0..out_words {
            let lo = self.words.get(word0 + w).copied().unwrap_or(0) >> shift;
            let hi = if shift == 0 {
                0
            } else {
                self.words.get(word0 + w + 1).copied().unwrap_or(0) << (WORD_BITS - shift)
            };
            out.words[w] = lo | hi;
        }
        // Mask bits beyond `take` so padding stays −1 (zero bits).
        let rem = take % WORD_BITS;
        if rem != 0 {
            out.words[out_words - 1] &= (1u64 << rem) - 1;
        }
        for w in &mut out.words[out_words..] {
            *w = 0;
        }
        out
    }

    /// The packed words (tail bits beyond `len` are always zero).
    #[inline]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Extracts `nbits ≤ 64` bits starting at `start` as the low bits of a
    /// `u64` (word-level: two shifts instead of a per-bit loop). Positions
    /// past `len` read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `nbits > 64` or `start >= len` for a non-empty read.
    #[inline]
    pub fn extract_bits(&self, start: usize, nbits: usize) -> u64 {
        assert!(nbits <= WORD_BITS, "cannot extract more than 64 bits");
        if nbits == 0 {
            return 0;
        }
        assert!(
            start < self.len,
            "bit index {start} out of range for length {}",
            self.len
        );
        let w = start / WORD_BITS;
        let shift = start % WORD_BITS;
        let lo = self.words[w] >> shift;
        let hi = if shift == 0 {
            0
        } else {
            self.words.get(w + 1).copied().unwrap_or(0) << (WORD_BITS - shift)
        };
        let v = lo | hi;
        if nbits == WORD_BITS {
            v
        } else {
            v & ((1u64 << nbits) - 1)
        }
    }

    /// Number of positions where `self` and `other` agree.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[inline]
    pub fn xnor_popcount(&self, other: &BitVec) -> u32 {
        assert_eq!(self.len, other.len, "xnor_popcount: length mismatch");
        xnor_popcount(&self.words, &other.words, self.len)
    }

    /// Number of positions among the first `n` where `self` and `other`
    /// agree — [`xnor_popcount`](Self::xnor_popcount) restricted to a
    /// prefix, the word-level kernel behind partially occupied edge tiles
    /// (padding columns excluded from the popcount but not re-scanned
    /// bit-by-bit).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ or `n > len`.
    #[inline]
    pub fn xnor_popcount_first(&self, other: &BitVec, n: usize) -> u32 {
        assert_eq!(self.len, other.len, "xnor_popcount_first: length mismatch");
        assert!(n <= self.len, "prefix {n} longer than vector {}", self.len);
        xnor_popcount(&self.words, &other.words, n)
    }

    /// Element-wise XNOR: bit `i` of the result is set when `self` and
    /// `other` agree at `i` (±1 product of +1). Tail bits beyond `len`
    /// stay zero.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xnor(&self, other: &BitVec) -> BitVec {
        assert_eq!(self.len, other.len, "xnor: length mismatch");
        let mut out = BitVec::zeros(self.len);
        for (o, (a, b)) in out
            .words
            .iter_mut()
            .zip(self.words.iter().zip(&other.words))
        {
            *o = !(a ^ b);
        }
        if let Some(last) = out.words.last_mut() {
            *last &= tail_mask(self.len);
        }
        out
    }

    /// ±1 dot product: `2 · xnor_popcount − len`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[inline]
    pub fn dot_pm1(&self, other: &BitVec) -> i32 {
        2 * self.xnor_popcount(other) as i32 - self.len as i32
    }

    /// Expands back to a ±1 float vector.
    pub fn to_signs(&self) -> Vec<f32> {
        (0..self.len)
            .map(|i| if self.get(i) { 1.0 } else { -1.0 })
            .collect()
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(len={}, ones={})", self.len, self.count_ones())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let bools: Vec<bool> = iter.into_iter().collect();
        Self::from_bools(&bools)
    }
}

/// A dense matrix of ±1 values, bit-packed row by row.
///
/// Each row starts on a fresh `u64` boundary so rows can be handed to
/// [`xnor_popcount`] directly — this mirrors how weight rows map onto RRAM
/// array word lines in the paper's architecture (Fig 5).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all −1 matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let wpr = words_for(cols);
        Self {
            rows,
            cols,
            words_per_row: wpr,
            data: vec![0; wpr * rows],
        }
    }

    /// Packs the signs of a row-major float matrix of shape `[rows, cols]`
    /// via the canonical [`sign_bit`](crate::sign_bit) predicate
    /// (branchless, word-at-a-time, runtime-dispatched — see
    /// [`BitVec::from_signs`]).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols`.
    pub fn from_signs(values: &[f32], rows: usize, cols: usize) -> Self {
        assert_eq!(values.len(), rows * cols, "from_signs: size mismatch");
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            let row_values = &values[r * cols..(r + 1) * cols];
            let row_words = &mut m.data[r * m.words_per_row..(r + 1) * m.words_per_row];
            pack::pack_signs(row_values, row_words);
        }
        m
    }

    /// Packs the signs of `rows.len()` separate feature slices, one per
    /// matrix row — the zero-concatenation entry point for serving paths
    /// whose samples arrive as individual vectors.
    ///
    /// # Panics
    ///
    /// Panics if any slice's length differs from `cols`.
    pub fn from_sign_rows(rows: &[&[f32]], cols: usize) -> Self {
        let mut m = Self::zeros(rows.len(), cols);
        for (r, row_values) in rows.iter().enumerate() {
            assert_eq!(
                row_values.len(),
                cols,
                "from_sign_rows: row {r} width mismatch"
            );
            let row_words = &mut m.data[r * m.words_per_row..(r + 1) * m.words_per_row];
            pack::pack_signs(row_values, row_words);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Bit at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        (self.data[r * self.words_per_row + c / WORD_BITS] >> (c % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        let mask = 1u64 << (c % WORD_BITS);
        let w = &mut self.data[r * self.words_per_row + c / WORD_BITS];
        if value {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// Flips bit `(r, c)` (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn flip(&mut self, r: usize, c: usize) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        self.data[r * self.words_per_row + c / WORD_BITS] ^= 1u64 << (c % WORD_BITS);
    }

    /// The packed words of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn row_words(&self, r: usize) -> &[u64] {
        assert!(r < self.rows, "row {r} out of range");
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Copies row `r` into an owned [`BitVec`].
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> BitVec {
        BitVec {
            words: self.row_words(r).to_vec(),
            len: self.cols,
        }
    }

    /// Overwrites row `r` with the words of `src` (word-level copy; the
    /// fast path batched layer evaluation uses to store per-sample
    /// activation rows).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `src.len() != cols`.
    pub fn set_row(&mut self, r: usize, src: &BitVec) {
        assert!(r < self.rows, "row {r} out of range");
        assert_eq!(src.len(), self.cols, "set_row: width mismatch");
        let dst = &mut self.data[r * self.words_per_row..(r + 1) * self.words_per_row];
        dst.copy_from_slice(&src.words);
    }

    /// Overwrites row `r` from a bit predicate over `0..cols`, branchlessly
    /// word-at-a-time (the batched layer output path).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[inline]
    pub fn set_row_bits(&mut self, r: usize, bit: impl Fn(usize) -> bool) {
        assert!(r < self.rows, "row {r} out of range");
        let row_words = &mut self.data[r * self.words_per_row..(r + 1) * self.words_per_row];
        pack_words(row_words, self.cols, bit);
    }

    /// Builds the bit-packed `im2col`-style window matrix of a multichannel
    /// ±1 signal: row `t` holds the kernel window starting at step `t` of
    /// every channel, laid out channel-major then tap-major (matching the
    /// weight layout of `rbnn_nn::Conv1d` and `rbnn_binary::BinaryConv1d`).
    ///
    /// The resulting `[out_len, channels·kernel]` matrix lets a binarized
    /// convolution run as row-versus-row [`xnor_popcount`] — the same
    /// word-level kernel the dense inference and RRAM sense paths use —
    /// instead of assembling each window bit by bit. Each window field is
    /// gathered with [`BitVec::extract_bits`] (two shifts per channel,
    /// kernels up to 64 taps; wider kernels fall back to a per-bit loop).
    ///
    /// # Panics
    ///
    /// Panics if `input` is empty, channel lengths differ, or the signal is
    /// shorter than the kernel.
    pub fn conv1d_windows(input: &[BitVec], kernel: usize) -> BitMatrix {
        assert!(!input.is_empty(), "need at least one input channel");
        assert!(kernel > 0, "kernel must be positive");
        let len = input[0].len();
        assert!(
            input.iter().all(|c| c.len() == len),
            "channel lengths differ"
        );
        assert!(len >= kernel, "input shorter than kernel");
        let channels = input.len();
        let out_len = len - kernel + 1;
        let mut m = BitMatrix::zeros(out_len, channels * kernel);
        for t in 0..out_len {
            let row = &mut m.data[t * m.words_per_row..(t + 1) * m.words_per_row];
            if kernel <= WORD_BITS {
                for (c, chan) in input.iter().enumerate() {
                    write_bits(row, c * kernel, kernel, chan.extract_bits(t, kernel));
                }
            } else {
                for (c, chan) in input.iter().enumerate() {
                    for k in 0..kernel {
                        if chan.get(t + k) {
                            let pos = c * kernel + k;
                            row[pos / WORD_BITS] |= 1u64 << (pos % WORD_BITS);
                        }
                    }
                }
            }
        }
        m
    }

    /// Matrix–vector ±1 product: element `r` is `2·popcount(XNOR(row_r, x)) − cols`.
    ///
    /// This is the operation one RRAM array + XNOR-PCSA column bank +
    /// popcount tree performs for a fully-connected BNN layer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec_pm1(&self, x: &BitVec) -> Vec<i32> {
        assert_eq!(x.len(), self.cols, "matvec_pm1: length mismatch");
        (0..self.rows)
            .map(|r| {
                2 * xnor_popcount(self.row_words(r), x.as_words(), self.cols) as i32
                    - self.cols as i32
            })
            .collect()
    }

    /// Total number of +1 entries.
    pub fn count_ones(&self) -> u64 {
        self.data.iter().map(|w| w.count_ones() as u64).sum()
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BitMatrix({}×{}, ones={})",
            self.rows,
            self.cols,
            self.count_ones()
        )
    }
}

/// A [`BitMatrix`] copied into the lane-interleaved layout of the batched
/// XNOR-popcount kernel: rows are grouped in blocks of four, and within a
/// block word `j` of the four rows sits contiguously, so one 256-bit load
/// fetches the same word column of the whole block.
///
/// Built once (an allocation — e.g. at execution-plan compile time) and
/// queried many times with [`popcounts_into`](Self::popcounts_into), which
/// resolves the popcount kernel **once per call** instead of once per row.
/// For the short rows typical of fused-executor replay (a few words each),
/// per-row dispatch, bounds checks, and SIMD remainder handling cost more
/// than the popcounts themselves; this layout amortizes all three across
/// the matrix.
#[derive(Clone, PartialEq, Eq)]
pub struct InterleavedRows {
    words: Vec<u64>,
    rows: usize,
    words_per_row: usize,
    len: usize,
}

impl InterleavedRows {
    /// Copies `m` into interleaved layout, padding the row count up to a
    /// multiple of the lane width with all-zero rows.
    pub fn from_matrix(m: &BitMatrix) -> Self {
        let rows = m.rows();
        let len = m.cols();
        let words_per_row = words_for(len);
        let lanes = popcount::ROW_LANES;
        let padded = rows.div_ceil(lanes) * lanes;
        let mut words = vec![0u64; padded * words_per_row];
        for r in 0..rows {
            let src = m.row_words(r);
            let (block, lane) = (r / lanes, r % lanes);
            for (j, &w) in src.iter().enumerate() {
                words[(block * words_per_row + j) * lanes + lane] = w;
            }
        }
        Self {
            words,
            rows,
            words_per_row,
            len,
        }
    }

    /// Number of real (unpadded) rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Row count padded to the kernel's lane width — the minimum length of
    /// the `out` slice passed to [`popcounts_into`](Self::popcounts_into).
    pub fn padded_rows(&self) -> usize {
        if self.words_per_row == 0 {
            return self.rows.div_ceil(popcount::ROW_LANES) * popcount::ROW_LANES;
        }
        self.words.len() / self.words_per_row
    }

    /// Bits per row.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Writes `popcount(XNOR(row_r, x))` over `len` bits into `out[r]` for
    /// every real row, with a single kernel dispatch. Entries of `out`
    /// beyond [`rows`](Self::rows) (up to [`padded_rows`](Self::padded_rows))
    /// are clobbered with unspecified values.
    ///
    /// Tail bits beyond `len` in `x`'s last word **must be zero** (as
    /// [`pack_signs_into`] and [`BitVec::from_signs`] guarantee): the
    /// kernel counts whole words — the XNOR of two all-zero tails is
    /// all-ones — and subtracts the constant tail contribution afterwards,
    /// which is exact only under that invariant. Debug builds assert it.
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than one row or `out` is shorter than
    /// [`padded_rows`](Self::padded_rows).
    #[inline]
    pub fn popcounts_into(&self, x: &[u64], out: &mut [u32]) {
        let padded = self.padded_rows();
        assert!(x.len() >= self.words_per_row, "x shorter than one row");
        assert!(out.len() >= padded, "out shorter than padded row count");
        debug_assert!(
            self.words_per_row == 0 || x[self.words_per_row - 1] & !tail_mask(self.len) == 0,
            "x tail bits beyond len must be zero"
        );
        popcount::xnor_popcount_rows(&self.words, self.words_per_row, x, &mut out[..padded]);
        let slack = (self.words_per_row * WORD_BITS - self.len) as u32;
        if slack != 0 {
            for c in &mut out[..self.rows] {
                *c -= slack;
            }
        }
    }
}

impl fmt::Debug for InterleavedRows {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "InterleavedRows({}×{})", self.rows, self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn set_get_flip_roundtrip() {
        let mut v = BitVec::zeros(130);
        assert!(!v.get(129));
        v.set(129, true);
        assert!(v.get(129));
        v.flip(129);
        assert!(!v.get(129));
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn from_signs_zero_is_plus_one() {
        let v = BitVec::from_signs(&[0.0, -0.1, 0.1]);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(2));
    }

    #[test]
    fn dot_pm1_matches_float_dot() {
        let mut rng = StdRng::seed_from_u64(21);
        for len in [1usize, 7, 64, 65, 200] {
            let a: Vec<f32> = (0..len)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let b: Vec<f32> = (0..len)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let fa = a.iter().zip(&b).map(|(x, y)| x * y).sum::<f32>() as i32;
            let bv_a = BitVec::from_signs(&a);
            let bv_b = BitVec::from_signs(&b);
            assert_eq!(bv_a.dot_pm1(&bv_b), fa, "len {len}");
        }
    }

    #[test]
    fn interleaved_rows_match_per_row_popcounts() {
        let mut rng = StdRng::seed_from_u64(31);
        for cols in [1usize, 63, 64, 65, 127, 128, 200] {
            for rows in [1usize, 2, 4, 5, 7, 75] {
                let signs: Vec<f32> = (0..rows * cols)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect();
                let m = BitMatrix::from_signs(&signs, rows, cols);
                let iw = InterleavedRows::from_matrix(&m);
                assert_eq!(iw.rows(), rows);
                assert_eq!(iw.len(), cols);
                assert!(iw.padded_rows() >= rows && iw.padded_rows() % 4 == 0);

                let xs: Vec<f32> = (0..cols)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect();
                let x = BitVec::from_signs(&xs);
                // Dirty scratch: padded entries may be clobbered, real
                // entries must be exact.
                let mut out = vec![u32::MAX; iw.padded_rows()];
                iw.popcounts_into(x.as_words(), &mut out);
                for r in 0..rows {
                    let want = xnor_popcount(m.row_words(r), x.as_words(), cols);
                    assert_eq!(out[r], want, "row {r}, {rows}×{cols}");
                }
            }
        }
    }

    #[test]
    fn tail_bits_do_not_leak() {
        // 65 bits: the second word has 63 padding bits; XNOR of equal
        // vectors must count exactly 65, not 128.
        let v = BitVec::zeros(65);
        assert_eq!(v.xnor_popcount(&v), 65);
    }

    #[test]
    fn to_signs_roundtrip() {
        let signs = [1.0f32, -1.0, -1.0, 1.0, 1.0];
        let v = BitVec::from_signs(&signs);
        assert_eq!(v.to_signs(), signs);
    }

    #[test]
    fn from_iterator() {
        let v: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    fn matrix_roundtrip_and_rows() {
        let vals: Vec<f32> = vec![1.0, -1.0, -1.0, 1.0, 1.0, 1.0];
        let m = BitMatrix::from_signs(&vals, 2, 3);
        assert!(m.get(0, 0) && !m.get(0, 1) && !m.get(0, 2));
        assert!(m.get(1, 0) && m.get(1, 1) && m.get(1, 2));
        assert_eq!(m.row(1).count_ones(), 3);
    }

    #[test]
    fn matvec_pm1_matches_float() {
        let mut rng = StdRng::seed_from_u64(23);
        let (rows, cols) = (5, 97);
        let w: Vec<f32> = (0..rows * cols)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let x: Vec<f32> = (0..cols)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let m = BitMatrix::from_signs(&w, rows, cols);
        let xv = BitVec::from_signs(&x);
        let got = m.matvec_pm1(&xv);
        for r in 0..rows {
            let expect: f32 = (0..cols).map(|c| w[r * cols + c] * x[c]).sum();
            assert_eq!(got[r], expect as i32, "row {r}");
        }
    }

    #[test]
    fn xnor_matches_bit_loop_and_masks_tail() {
        let mut rng = StdRng::seed_from_u64(41);
        for len in [1usize, 64, 65, 130] {
            let a_bits: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
            let b_bits: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
            let a = BitVec::from_bools(&a_bits);
            let b = BitVec::from_bools(&b_bits);
            let x = a.xnor(&b);
            for i in 0..len {
                assert_eq!(x.get(i), a_bits[i] == b_bits[i], "len {len}, bit {i}");
            }
            // Tail bits must not leak into popcounts.
            assert_eq!(x.count_ones(), a.xnor_popcount(&b));
        }
    }

    #[test]
    fn xnor_popcount_first_matches_bit_loop() {
        let mut rng = StdRng::seed_from_u64(37);
        for len in [1usize, 63, 64, 65, 130, 200] {
            let a_bits: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
            let b_bits: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
            let a = BitVec::from_bools(&a_bits);
            let b = BitVec::from_bools(&b_bits);
            for n in [0, 1, len / 3, len / 2, len] {
                let expect = a_bits[..n]
                    .iter()
                    .zip(&b_bits[..n])
                    .filter(|(x, y)| x == y)
                    .count() as u32;
                assert_eq!(a.xnor_popcount_first(&b, n), expect, "len {len}, n {n}");
            }
            assert_eq!(a.xnor_popcount_first(&b, len), a.xnor_popcount(&b));
        }
    }

    #[test]
    fn count_ones_first_matches_bit_loop() {
        let mut rng = StdRng::seed_from_u64(31);
        for len in [1usize, 63, 64, 65, 130, 200] {
            let bits: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
            let v = BitVec::from_bools(&bits);
            for n in [0, 1, len / 2, len] {
                let expect = bits[..n].iter().filter(|&&b| b).count() as u32;
                assert_eq!(v.count_ones_first(n), expect, "len {len}, n {n}");
            }
        }
    }

    #[test]
    fn slice_padded_matches_bit_loop() {
        let mut rng = StdRng::seed_from_u64(32);
        for len in [1usize, 64, 65, 130, 300] {
            let bits: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
            let v = BitVec::from_bools(&bits);
            for _ in 0..20 {
                let start = rng.gen_range(0..len);
                let take = rng.gen_range(0..=(len - start));
                let out_len = take + rng.gen_range(0usize..70);
                let s = v.slice_padded(start, take, out_len);
                assert_eq!(s.len(), out_len);
                for i in 0..take {
                    assert_eq!(s.get(i), bits[start + i], "len {len} start {start} i {i}");
                }
                for i in take..out_len {
                    assert!(!s.get(i), "padding must be zero");
                }
            }
        }
    }

    #[test]
    fn set_row_copies_words() {
        let mut m = BitMatrix::zeros(3, 70);
        let mut rng = StdRng::seed_from_u64(33);
        let bits: Vec<bool> = (0..70).map(|_| rng.gen::<bool>()).collect();
        let v = BitVec::from_bools(&bits);
        m.set_row(1, &v);
        for c in 0..70 {
            assert_eq!(m.get(1, c), bits[c]);
            assert!(!m.get(0, c));
            assert!(!m.get(2, c));
        }
    }

    #[test]
    fn extract_bits_matches_bit_loop() {
        let mut rng = StdRng::seed_from_u64(51);
        for len in [1usize, 63, 64, 65, 130, 200] {
            let bits: Vec<bool> = (0..len).map(|_| rng.gen::<bool>()).collect();
            let v = BitVec::from_bools(&bits);
            for _ in 0..40 {
                let start = rng.gen_range(0..len);
                let nbits = rng.gen_range(0..=64usize);
                let got = v.extract_bits(start, nbits);
                for i in 0..nbits {
                    let expect = start + i < len && bits[start + i];
                    assert_eq!(
                        (got >> i) & 1 == 1,
                        expect,
                        "len {len} start {start} nbits {nbits} bit {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn conv1d_windows_matches_per_bit_assembly() {
        let mut rng = StdRng::seed_from_u64(53);
        // Kernel sizes cross word boundaries in the row layout (channels·k
        // spanning > 64 bits) and include the wide-kernel fallback (> 64).
        for &(channels, kernel, len) in &[
            (1usize, 1usize, 5usize),
            (3, 5, 20),
            (12, 13, 80),
            (2, 70, 100),
        ] {
            let input: Vec<BitVec> = (0..channels)
                .map(|_| (0..len).map(|_| rng.gen::<bool>()).collect())
                .collect();
            let m = BitMatrix::conv1d_windows(&input, kernel);
            let out_len = len - kernel + 1;
            assert_eq!((m.rows(), m.cols()), (out_len, channels * kernel));
            for t in 0..out_len {
                for c in 0..channels {
                    for k in 0..kernel {
                        assert_eq!(
                            m.get(t, c * kernel + k),
                            input[c].get(t + k),
                            "({channels},{kernel},{len}) t={t} c={c} k={k}"
                        );
                    }
                }
            }
        }
    }

    /// Reference window assembly: the per-bit loop the > 64-tap fallback
    /// uses, applied unconditionally. The fast path must equal this —
    /// including the packed tail words, so padding-bit leaks are caught by
    /// whole-struct equality.
    fn conv1d_windows_per_bit(input: &[BitVec], kernel: usize) -> BitMatrix {
        let channels = input.len();
        let out_len = input[0].len() - kernel + 1;
        let mut m = BitMatrix::zeros(out_len, channels * kernel);
        for t in 0..out_len {
            for (c, chan) in input.iter().enumerate() {
                for k in 0..kernel {
                    if chan.get(t + k) {
                        m.set(t, c * kernel + k, true);
                    }
                }
            }
        }
        m
    }

    #[test]
    fn conv1d_windows_fast_path_equals_fallback_at_word_boundary() {
        // 63/64/65 taps straddle the ≤ 64-tap `extract_bits` word-gather
        // fast path (65 falls back to the per-bit loop); channel counts
        // and odd, non-word-aligned signal lengths make the per-row field
        // offsets land at every alignment. The packed structures must be
        // *identical* (bit content and zeroed tails), not merely
        // bit-by-bit equal through the accessor.
        let mut rng = StdRng::seed_from_u64(61);
        for &kernel in &[63usize, 64, 65] {
            for &channels in &[1usize, 2, 3] {
                for &len in &[kernel + 1, 97, 129, 191] {
                    let input: Vec<BitVec> = (0..channels)
                        .map(|_| (0..len).map(|_| rng.gen::<bool>()).collect())
                        .collect();
                    let fast = BitMatrix::conv1d_windows(&input, kernel);
                    let reference = conv1d_windows_per_bit(&input, kernel);
                    assert_eq!(
                        fast, reference,
                        "windows diverge at kernel={kernel}, channels={channels}, len={len}"
                    );
                }
            }
        }
    }

    #[test]
    fn conv1d_windows_boundary_taps_popcount_like_float_convolution() {
        // End-to-end use of the boundary-tap windows: row-vs-row
        // xnor_popcount against random filters must reproduce the ±1
        // convolution computed in floats, at 63/64/65 taps on
        // non-word-aligned widths.
        let mut rng = StdRng::seed_from_u64(67);
        for &kernel in &[63usize, 64, 65] {
            let channels = 2usize;
            let len = 101usize; // odd, non-aligned
            let taps = channels * kernel;
            let x: Vec<Vec<f32>> = (0..channels)
                .map(|_| {
                    (0..len)
                        .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                        .collect()
                })
                .collect();
            let w: Vec<f32> = (0..taps)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let input: Vec<BitVec> = x.iter().map(|c| BitVec::from_signs(c)).collect();
            let wv = BitVec::from_signs(&w);
            let windows = BitMatrix::conv1d_windows(&input, kernel);
            for t in 0..(len - kernel + 1) {
                let p = xnor_popcount(windows.row_words(t), wv.as_words(), taps);
                let dot = 2 * p as i32 - taps as i32;
                let expect: f32 = (0..channels)
                    .map(|c| {
                        (0..kernel)
                            .map(|k| w[c * kernel + k] * x[c][t + k])
                            .sum::<f32>()
                    })
                    .sum();
                assert_eq!(dot, expect as i32, "kernel {kernel}, step {t}");
            }
        }
    }

    #[test]
    fn conv1d_windows_rows_popcount_cleanly() {
        // Word-aligned rows: the window rows must be directly usable by
        // xnor_popcount without tail-bit leakage.
        let input = vec![BitVec::from_bools(&vec![true; 70])];
        let m = BitMatrix::conv1d_windows(&input, 65);
        let w = BitVec::from_bools(&vec![true; 65]);
        assert_eq!(xnor_popcount(m.row_words(0), w.as_words(), 65), 65);
    }

    #[test]
    fn flip_changes_exactly_one_dot_term() {
        let mut m = BitMatrix::from_signs(&vec![1.0; 64], 1, 64);
        let x = BitVec::from_signs(&vec![1.0; 64]);
        assert_eq!(m.matvec_pm1(&x)[0], 64);
        m.flip(0, 10);
        assert_eq!(m.matvec_pm1(&x)[0], 62);
    }
}
