//! # rbnn-tensor
//!
//! Minimal, dependency-light numerical foundation for the
//! [rram-bnn](https://arxiv.org/abs/2006.11595) reproduction:
//!
//! * [`Tensor`] — a contiguous, row-major, `f32` N-dimensional array with the
//!   small set of operations a from-scratch CNN training stack needs
//!   (elementwise maps, reductions, blocked matrix multiplication, `im2col`
//!   lowering for 1-D and 2-D convolutions).
//! * [`BitVec`] / [`BitMatrix`] — bit-packed ±1 vectors and matrices with the
//!   XNOR + popcount kernels that binarized neural networks execute
//!   (Eq. 3 of the paper: `y = sign(popcount(XNOR(w, x)) − b)`).
//! * [`par`] — a tiny scoped-thread parallel-for built on `crossbeam`, used to
//!   split batch work across cores without pulling in a full runtime.
//!
//! The crate is deliberately *not* a general array library: shapes are always
//! contiguous and row-major, broadcasting is limited to what the NN stack
//! uses, and every operation is implemented with plain loops so the numerical
//! behaviour is easy to audit against the paper's equations.
//!
//! ```
//! use rbnn_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bits;
pub mod gemm;
mod im2col;
pub mod kernels;
mod matmul;
pub mod par;
mod scratch;
mod shape;
mod tensor;

pub use bits::{pack_signs_into, xnor_popcount, BitMatrix, BitVec, InterleavedRows};
pub use gemm::{reference_kernels_enabled, set_reference_kernels};
pub use im2col::{
    im2col1d, im2col1d_backward, im2col1d_batch, im2col1d_batch_backward, im2col2d,
    im2col2d_backward, im2col2d_batch, im2col2d_batch_backward, Conv1dGeom, Conv2dGeom,
};
pub use kernels::dispatch::{
    clear_forced_scalar, dispatch_report, forced_scalar, host_features, set_forced_scalar,
    CpuFeatures, DispatchReport,
};
pub use kernels::sign_bit;
pub use scratch::Scratch;
pub use shape::Shape;
pub use tensor::{argmax, Tensor};

/// Numerical tolerance used throughout the test-suites of this workspace.
pub const TEST_EPS: f32 = 1e-4;
