//! `im2col` lowering for 1-D and 2-D convolutions.
//!
//! The paper's networks are built from temporal/spatial 1-D convolutions
//! (EEG/ECG, Fig 1 and Tables I–II) and 2-D convolutions (MobileNet V1).
//! Both are executed as matrix multiplications over patch matrices built
//! here; the `*_backward` functions scatter patch-matrix gradients back to
//! input gradients (the exact adjoint of the gather).

use crate::Tensor;

/// Geometry of a 1-D convolution over a `[channels, len]` signal.
///
/// ```
/// use rbnn_tensor::Conv1dGeom;
/// // EEG temporal convolution from Table I: kernel 30, padding 15 on 960
/// // samples gives 961 output steps.
/// let g = Conv1dGeom::new(64, 960, 30, 1, 15);
/// assert_eq!(g.out_len(), 961);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv1dGeom {
    /// Input channel count.
    pub channels: usize,
    /// Input signal length.
    pub len: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Stride between output steps.
    pub stride: usize,
    /// Symmetric zero padding on both ends.
    pub padding: usize,
}

impl Conv1dGeom {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`, `kernel == 0` or the padded signal is shorter
    /// than the kernel.
    pub fn new(channels: usize, len: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(kernel > 0, "kernel must be positive");
        assert!(
            len + 2 * padding >= kernel,
            "kernel {kernel} longer than padded signal {}",
            len + 2 * padding
        );
        Self {
            channels,
            len,
            kernel,
            stride,
            padding,
        }
    }

    /// Output length: `(len + 2·padding − kernel) / stride + 1`.
    pub fn out_len(&self) -> usize {
        (self.len + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Rows of the patch matrix (`channels × kernel`).
    pub fn patch_rows(&self) -> usize {
        self.channels * self.kernel
    }
}

/// Builds the `[channels·kernel, out_len]` patch matrix of `input`.
///
/// Column `t` holds the padded window starting at `t·stride − padding`,
/// laid out channel-major then tap-major, so a weight matrix of shape
/// `[out_channels, channels·kernel]` left-multiplies it directly.
///
/// # Panics
///
/// Panics if `input` is not `[channels, len]` as described by `geom`.
pub fn im2col1d(input: &Tensor, geom: &Conv1dGeom) -> Tensor {
    assert_eq!(
        input.dims(),
        &[geom.channels, geom.len],
        "im2col1d: input shape {:?} does not match geometry",
        input.dims()
    );
    let out_len = geom.out_len();
    let mut cols = Tensor::zeros([geom.patch_rows(), out_len]);
    let src = input.as_slice();
    let dst = cols.as_mut_slice();
    for c in 0..geom.channels {
        for kk in 0..geom.kernel {
            let row = c * geom.kernel + kk;
            let base = row * out_len;
            for t in 0..out_len {
                let pos = t * geom.stride + kk;
                // pos indexes the padded signal; translate to the raw signal.
                if pos >= geom.padding && pos < geom.padding + geom.len {
                    dst[base + t] = src[c * geom.len + (pos - geom.padding)];
                }
            }
        }
    }
    cols
}

/// Adjoint of [`im2col1d`]: accumulates a patch-matrix gradient back into an
/// input-shaped gradient.
///
/// # Panics
///
/// Panics if `grad_cols` is not `[channels·kernel, out_len]`.
pub fn im2col1d_backward(grad_cols: &Tensor, geom: &Conv1dGeom) -> Tensor {
    let out_len = geom.out_len();
    assert_eq!(
        grad_cols.dims(),
        &[geom.patch_rows(), out_len],
        "im2col1d_backward: gradient shape {:?} does not match geometry",
        grad_cols.dims()
    );
    let mut grad_input = Tensor::zeros([geom.channels, geom.len]);
    let src = grad_cols.as_slice();
    let dst = grad_input.as_mut_slice();
    for c in 0..geom.channels {
        for kk in 0..geom.kernel {
            let row = c * geom.kernel + kk;
            let base = row * out_len;
            for t in 0..out_len {
                let pos = t * geom.stride + kk;
                if pos >= geom.padding && pos < geom.padding + geom.len {
                    dst[c * geom.len + (pos - geom.padding)] += src[base + t];
                }
            }
        }
    }
    grad_input
}

/// Geometry of a 2-D convolution over a `[channels, height, width]` image.
///
/// Strides and paddings are independent per axis so the paper's EEG network
/// (Table I: kernel 30×1 with padding 15 along time only, pooling 30×1 with
/// stride 15×1) maps directly.
///
/// ```
/// use rbnn_tensor::Conv2dGeom;
/// // EEG "conv in time": 960×64 single-channel image, kernel (30, 1),
/// // padding (15, 0) → output 961×64.
/// let g = Conv2dGeom::new(1, 960, 64, (30, 1), (1, 1), (15, 0));
/// assert_eq!((g.out_h(), g.out_w()), (961, 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeom {
    /// Input channel count.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride along height.
    pub stride_h: usize,
    /// Stride along width.
    pub stride_w: usize,
    /// Symmetric zero padding along height.
    pub pad_h: usize,
    /// Symmetric zero padding along width.
    pub pad_w: usize,
}

impl Conv2dGeom {
    /// Creates a geometry descriptor with `(height, width)` tuples for
    /// kernel, stride and padding.
    ///
    /// # Panics
    ///
    /// Panics if a stride or kernel extent is zero, or the padded image is
    /// smaller than the kernel.
    pub fn new(
        channels: usize,
        height: usize,
        width: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        let (kernel_h, kernel_w) = kernel;
        let (stride_h, stride_w) = stride;
        let (pad_h, pad_w) = padding;
        assert!(stride_h > 0 && stride_w > 0, "stride must be positive");
        assert!(kernel_h > 0 && kernel_w > 0, "kernel must be positive");
        assert!(
            height + 2 * pad_h >= kernel_h && width + 2 * pad_w >= kernel_w,
            "kernel ({kernel_h}×{kernel_w}) larger than padded image ({}×{})",
            height + 2 * pad_h,
            width + 2 * pad_w,
        );
        Self {
            channels,
            height,
            width,
            kernel_h,
            kernel_w,
            stride_h,
            stride_w,
            pad_h,
            pad_w,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.height + 2 * self.pad_h - self.kernel_h) / self.stride_h + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.width + 2 * self.pad_w - self.kernel_w) / self.stride_w + 1
    }

    /// Rows of the patch matrix (`channels · kernel_h · kernel_w`).
    pub fn patch_rows(&self) -> usize {
        self.channels * self.kernel_h * self.kernel_w
    }
}

/// Builds the `[channels·kh·kw, out_h·out_w]` patch matrix of `input`.
///
/// # Panics
///
/// Panics if `input` is not `[channels, height, width]` as described by
/// `geom`.
pub fn im2col2d(input: &Tensor, geom: &Conv2dGeom) -> Tensor {
    assert_eq!(
        input.dims(),
        &[geom.channels, geom.height, geom.width],
        "im2col2d: input shape {:?} does not match geometry",
        input.dims()
    );
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut cols = Tensor::zeros([geom.patch_rows(), oh * ow]);
    let src = input.as_slice();
    let dst = cols.as_mut_slice();
    let plane = geom.height * geom.width;
    for c in 0..geom.channels {
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let row = (c * geom.kernel_h + ky) * geom.kernel_w + kx;
                let base = row * oh * ow;
                for oy in 0..oh {
                    let iy = oy * geom.stride_h + ky;
                    if iy < geom.pad_h || iy >= geom.pad_h + geom.height {
                        continue;
                    }
                    let iy = iy - geom.pad_h;
                    for ox in 0..ow {
                        let ix = ox * geom.stride_w + kx;
                        if ix < geom.pad_w || ix >= geom.pad_w + geom.width {
                            continue;
                        }
                        let ix = ix - geom.pad_w;
                        dst[base + oy * ow + ox] = src[c * plane + iy * geom.width + ix];
                    }
                }
            }
        }
    }
    cols
}

/// Adjoint of [`im2col2d`].
///
/// # Panics
///
/// Panics if `grad_cols` is not `[channels·kh·kw, out_h·out_w]`.
pub fn im2col2d_backward(grad_cols: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(
        grad_cols.dims(),
        &[geom.patch_rows(), oh * ow],
        "im2col2d_backward: gradient shape {:?} does not match geometry",
        grad_cols.dims()
    );
    let mut grad_input = Tensor::zeros([geom.channels, geom.height, geom.width]);
    let src = grad_cols.as_slice();
    let dst = grad_input.as_mut_slice();
    let plane = geom.height * geom.width;
    for c in 0..geom.channels {
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let row = (c * geom.kernel_h + ky) * geom.kernel_w + kx;
                let base = row * oh * ow;
                for oy in 0..oh {
                    let iy = oy * geom.stride_h + ky;
                    if iy < geom.pad_h || iy >= geom.pad_h + geom.height {
                        continue;
                    }
                    let iy = iy - geom.pad_h;
                    for ox in 0..ow {
                        let ix = ox * geom.stride_w + kx;
                        if ix < geom.pad_w || ix >= geom.pad_w + geom.width {
                            continue;
                        }
                        let ix = ix - geom.pad_w;
                        dst[c * plane + iy * geom.width + ix] += src[base + oy * ow + ox];
                    }
                }
            }
        }
    }
    grad_input
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct (definition-level) 1-D convolution for cross-checking.
    fn naive_conv1d(input: &Tensor, weight: &Tensor, geom: &Conv1dGeom) -> Tensor {
        let co = weight.dim(0);
        let out_len = geom.out_len();
        let mut out = Tensor::zeros([co, out_len]);
        for o in 0..co {
            for t in 0..out_len {
                let mut acc = 0.0;
                for c in 0..geom.channels {
                    for kk in 0..geom.kernel {
                        let pos =
                            t as isize * geom.stride as isize + kk as isize - geom.padding as isize;
                        if pos >= 0 && (pos as usize) < geom.len {
                            acc += input.at(&[c, pos as usize])
                                * weight.at(&[o, c * geom.kernel + kk]);
                        }
                    }
                }
                *out.at_mut(&[o, t]) = acc;
            }
        }
        out
    }

    #[test]
    fn table1_table2_output_shapes() {
        // Paper Table I: conv(30×1, pad 15×0) over a 960×64 image → 961×64.
        let g1 = Conv2dGeom::new(1, 960, 64, (30, 1), (1, 1), (15, 0));
        assert_eq!((g1.out_h(), g1.out_w()), (961, 64));
        // Conv in space: kernel 1×64 over 961×64 → 961×1.
        let g2 = Conv2dGeom::new(40, 961, 64, (1, 64), (1, 1), (0, 0));
        assert_eq!((g2.out_h(), g2.out_w()), (961, 1));
        // Avg pool 30×1 stride 15 → 63×1.
        let gp = Conv2dGeom::new(40, 961, 1, (30, 1), (15, 1), (0, 0));
        assert_eq!((gp.out_h(), gp.out_w()), (63, 1));
        // Paper Table II: conv(13, no pad) over 750 samples → 738 steps.
        assert_eq!(Conv1dGeom::new(12, 750, 13, 1, 0).out_len(), 738);
    }

    #[test]
    fn im2col1d_conv_matches_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(c, l, k, s, p) in &[(1, 10, 3, 1, 0), (2, 16, 5, 2, 2), (3, 9, 3, 1, 1)] {
            let geom = Conv1dGeom::new(c, l, k, s, p);
            let input = Tensor::randn([c, l], 1.0, &mut rng);
            let weight = Tensor::randn([4, c * k], 1.0, &mut rng);
            let cols = im2col1d(&input, &geom);
            let fast = weight.matmul(&cols);
            let slow = naive_conv1d(&input, &weight, &geom);
            assert!(fast.allclose(&slow, 1e-4), "mismatch for {geom:?}");
        }
    }

    #[test]
    fn im2col1d_backward_is_adjoint() {
        // <im2col(x), y> == <x, im2col_backward(y)> for all x, y — the
        // defining property of the adjoint, checked with random probes.
        let mut rng = StdRng::seed_from_u64(13);
        let geom = Conv1dGeom::new(3, 12, 4, 2, 1);
        let x = Tensor::randn([3, 12], 1.0, &mut rng);
        let y = Tensor::randn([geom.patch_rows(), geom.out_len()], 1.0, &mut rng);
        let lhs = im2col1d(&x, &geom).dot(&y);
        let rhs = x.dot(&im2col1d_backward(&y, &geom));
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn im2col2d_identity_kernel_is_flatten() {
        let geom = Conv2dGeom::new(1, 4, 4, (1, 1), (1, 1), (0, 0));
        let input = Tensor::from_fn([1, 4, 4], |i| i as f32);
        let cols = im2col2d(&input, &geom);
        assert_eq!(cols.dims(), &[1, 16]);
        assert_eq!(cols.as_slice(), input.as_slice());
    }

    #[test]
    fn im2col2d_backward_is_adjoint() {
        let mut rng = StdRng::seed_from_u64(17);
        let geom = Conv2dGeom::new(2, 6, 5, (3, 3), (2, 2), (1, 1));
        let x = Tensor::randn([2, 6, 5], 1.0, &mut rng);
        let y = Tensor::randn(
            [geom.patch_rows(), geom.out_h() * geom.out_w()],
            1.0,
            &mut rng,
        );
        let lhs = im2col2d(&x, &geom).dot(&y);
        let rhs = x.dot(&im2col2d_backward(&y, &geom));
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn asymmetric_padding_only_pads_requested_axis() {
        // Padding along height only: a kernel tap reaching above the image
        // reads zero, but width is never padded.
        let geom = Conv2dGeom::new(1, 3, 3, (3, 3), (1, 1), (1, 0));
        let input = Tensor::ones([1, 3, 3]);
        let cols = im2col2d(&input, &geom);
        assert_eq!((geom.out_h(), geom.out_w()), (3, 1));
        // Row 0 = tap (ky=0, kx=0); first output row reads padding → 0.
        assert_eq!(cols.at(&[0, 0]), 0.0);
        // Centre tap always reads real pixels.
        assert_eq!(cols.at(&[4, 0]), 1.0);
    }

    #[test]
    fn padding_produces_zero_rows() {
        let geom = Conv1dGeom::new(1, 4, 3, 1, 1);
        let input = Tensor::ones([1, 4]);
        let cols = im2col1d(&input, &geom);
        // First column, first tap reaches into the left padding.
        assert_eq!(cols.at(&[0, 0]), 0.0);
        // Interior taps are ones.
        assert_eq!(cols.at(&[1, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not match geometry")]
    fn im2col1d_rejects_wrong_shape() {
        let geom = Conv1dGeom::new(2, 8, 3, 1, 0);
        let input = Tensor::zeros([2, 9]);
        let _ = im2col1d(&input, &geom);
    }
}
