//! `im2col` lowering for 1-D and 2-D convolutions.
//!
//! The paper's networks are built from temporal/spatial 1-D convolutions
//! (EEG/ECG, Fig 1 and Tables I–II) and 2-D convolutions (MobileNet V1).
//! Both are executed as matrix multiplications over patch matrices built
//! here; the `*_backward` functions scatter patch-matrix gradients back to
//! input gradients (the exact adjoint of the gather).

use crate::{par, Tensor};

/// Geometry of a 1-D convolution over a `[channels, len]` signal.
///
/// ```
/// use rbnn_tensor::Conv1dGeom;
/// // EEG temporal convolution from Table I: kernel 30, padding 15 on 960
/// // samples gives 961 output steps.
/// let g = Conv1dGeom::new(64, 960, 30, 1, 15);
/// assert_eq!(g.out_len(), 961);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv1dGeom {
    /// Input channel count.
    pub channels: usize,
    /// Input signal length.
    pub len: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Stride between output steps.
    pub stride: usize,
    /// Symmetric zero padding on both ends.
    pub padding: usize,
}

impl Conv1dGeom {
    /// Creates a geometry descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `stride == 0`, `kernel == 0` or the padded signal is shorter
    /// than the kernel.
    pub fn new(channels: usize, len: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(kernel > 0, "kernel must be positive");
        assert!(
            len + 2 * padding >= kernel,
            "kernel {kernel} longer than padded signal {}",
            len + 2 * padding
        );
        Self {
            channels,
            len,
            kernel,
            stride,
            padding,
        }
    }

    /// Output length: `(len + 2·padding − kernel) / stride + 1`.
    pub fn out_len(&self) -> usize {
        (self.len + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Rows of the patch matrix (`channels × kernel`).
    pub fn patch_rows(&self) -> usize {
        self.channels * self.kernel
    }
}

/// Builds the `[channels·kernel, out_len]` patch matrix of `input`.
///
/// Column `t` holds the padded window starting at `t·stride − padding`,
/// laid out channel-major then tap-major, so a weight matrix of shape
/// `[out_channels, channels·kernel]` left-multiplies it directly.
///
/// # Panics
///
/// Panics if `input` is not `[channels, len]` as described by `geom`.
pub fn im2col1d(input: &Tensor, geom: &Conv1dGeom) -> Tensor {
    assert_eq!(
        input.dims(),
        &[geom.channels, geom.len],
        "im2col1d: input shape {:?} does not match geometry",
        input.dims()
    );
    let out_len = geom.out_len();
    let mut cols = Tensor::zeros([geom.patch_rows(), out_len]);
    let src = input.as_slice();
    let dst = cols.as_mut_slice();
    for c in 0..geom.channels {
        for kk in 0..geom.kernel {
            let row = c * geom.kernel + kk;
            let base = row * out_len;
            for t in 0..out_len {
                let pos = t * geom.stride + kk;
                // pos indexes the padded signal; translate to the raw signal.
                if pos >= geom.padding && pos < geom.padding + geom.len {
                    dst[base + t] = src[c * geom.len + (pos - geom.padding)];
                }
            }
        }
    }
    cols
}

/// Adjoint of [`im2col1d`]: accumulates a patch-matrix gradient back into an
/// input-shaped gradient.
///
/// # Panics
///
/// Panics if `grad_cols` is not `[channels·kernel, out_len]`.
pub fn im2col1d_backward(grad_cols: &Tensor, geom: &Conv1dGeom) -> Tensor {
    let out_len = geom.out_len();
    assert_eq!(
        grad_cols.dims(),
        &[geom.patch_rows(), out_len],
        "im2col1d_backward: gradient shape {:?} does not match geometry",
        grad_cols.dims()
    );
    let mut grad_input = Tensor::zeros([geom.channels, geom.len]);
    let src = grad_cols.as_slice();
    let dst = grad_input.as_mut_slice();
    for c in 0..geom.channels {
        for kk in 0..geom.kernel {
            let row = c * geom.kernel + kk;
            let base = row * out_len;
            for t in 0..out_len {
                let pos = t * geom.stride + kk;
                if pos >= geom.padding && pos < geom.padding + geom.len {
                    dst[c * geom.len + (pos - geom.padding)] += src[base + t];
                }
            }
        }
    }
    grad_input
}

/// Writes one sample's patch matrix into a batched `[rows, ld]` buffer at
/// column offset `col0` (every element of the window, padding zeros
/// included, is written — the destination need not be pre-zeroed).
///
/// # Safety
///
/// `dst` must be valid for `rows · ld` f32 writes, and no other live
/// reference may cover the `out_len`-wide column block at `col0` of any
/// row (the batched builders give each parallel worker a disjoint block,
/// and only row-segment slices are ever materialized).
unsafe fn im2col1d_write(src: &[f32], geom: &Conv1dGeom, dst: *mut f32, col0: usize, ld: usize) {
    let out_len = geom.out_len();
    for c in 0..geom.channels {
        for kk in 0..geom.kernel {
            let row = c * geom.kernel + kk;
            // SAFETY: caller contract (`# Safety` above) — `dst` covers
            // `rows · ld` f32s with `row < patch_rows` and
            // `col0 + out_len <= ld`, and this worker exclusively owns the
            // `out_len`-wide column block at `col0`, so the segment is in
            // bounds and unaliased.
            let seg = unsafe { std::slice::from_raw_parts_mut(dst.add(row * ld + col0), out_len) };
            for (t, d) in seg.iter_mut().enumerate() {
                let pos = t * geom.stride + kk;
                *d = if pos >= geom.padding && pos < geom.padding + geom.len {
                    src[c * geom.len + (pos - geom.padding)]
                } else {
                    0.0
                };
            }
        }
    }
}

/// Accumulates one sample's patch-matrix gradient (read from a batched
/// `[rows, ld]` buffer at column offset `col0`) into that sample's
/// `[channels, len]` input-gradient slice.
fn im2col1d_scatter(src: &[f32], geom: &Conv1dGeom, col0: usize, ld: usize, dst: &mut [f32]) {
    let out_len = geom.out_len();
    for c in 0..geom.channels {
        for kk in 0..geom.kernel {
            let row = c * geom.kernel + kk;
            let base = row * ld + col0;
            for t in 0..out_len {
                let pos = t * geom.stride + kk;
                if pos >= geom.padding && pos < geom.padding + geom.len {
                    dst[c * geom.len + (pos - geom.padding)] += src[base + t];
                }
            }
        }
    }
}

/// Builds the batched patch matrix `[patch_rows, n · out_len]` of a
/// `[n, channels, len]` batch directly into `cols_all` (resized in place,
/// reusing its allocation) — sample `i` occupies columns
/// `i·out_len .. (i+1)·out_len`.
///
/// Samples are laid out in disjoint column blocks, so the assembly runs in
/// parallel over samples with thread-count-invariant results.
///
/// # Panics
///
/// Panics if `x` is not `[n, channels, len]` as described by `geom`.
pub fn im2col1d_batch(x: &Tensor, geom: &Conv1dGeom, cols_all: &mut Tensor) {
    assert_eq!(x.shape().ndim(), 3, "im2col1d_batch expects [n, c, len]");
    let n = x.dim(0);
    assert_eq!(
        (x.dim(1), x.dim(2)),
        (geom.channels, geom.len),
        "im2col1d_batch: sample shape does not match geometry"
    );
    let out_len = geom.out_len();
    let ld = n * out_len;
    // The writer fills every element (padding zeros included), so the
    // buffer does not need pre-zeroing.
    cols_all.resize_for_overwrite([geom.patch_rows(), ld]);
    let xs = x.as_slice();
    let sample = geom.channels * geom.len;
    let dst = SendPtr(cols_all.as_mut_slice().as_mut_ptr());
    let dst = &dst;
    par::par_for(n, |i| {
        // SAFETY: `cols_all` was resized to `[patch_rows, n · out_len]`, so
        // the pointer covers every write. Sample i writes the disjoint
        // strided column block i·out_len…; the writer only materializes
        // row-segment slices inside that block, so workers never hold
        // aliasing references.
        unsafe {
            im2col1d_write(
                &xs[i * sample..(i + 1) * sample],
                geom,
                dst.0,
                i * out_len,
                ld,
            );
        }
    });
}

/// Adjoint of [`im2col1d_batch`]: scatters a batched patch-matrix gradient
/// `[patch_rows, n · out_len]` into `grad_x` (`[n, channels, len]`, resized
/// and zeroed in place). Parallel over samples; deterministic.
///
/// # Panics
///
/// Panics if `gcols_all`'s shape does not match `geom` for some batch size.
pub fn im2col1d_batch_backward(gcols_all: &Tensor, geom: &Conv1dGeom, grad_x: &mut Tensor) {
    let out_len = geom.out_len();
    assert_eq!(gcols_all.dim(0), geom.patch_rows(), "patch row mismatch");
    let ld = gcols_all.dim(1);
    assert_eq!(ld % out_len, 0, "column count not a multiple of out_len");
    let n = ld / out_len;
    grad_x.resize_zeroed([n, geom.channels, geom.len]);
    let src = gcols_all.as_slice();
    let sample = geom.channels * geom.len;
    let dst = SendPtr(grad_x.as_mut_slice().as_mut_ptr());
    let dst = &dst;
    par::par_for(n, |i| {
        // SAFETY: `grad_x` was resized to `[n, channels, len]`, so slice
        // `i·sample..(i+1)·sample` is in bounds; each sample index is
        // claimed by exactly one worker, so the slices are disjoint.
        let dsti = unsafe { std::slice::from_raw_parts_mut(dst.0.add(i * sample), sample) };
        im2col1d_scatter(src, geom, i * out_len, ld, dsti);
    });
}

/// Raw pointer wrapper for the disjoint-region parallel writes above.
struct SendPtr(*mut f32);
// SAFETY: shared only within `par_for` scopes whose workers write disjoint
// column blocks / sample slices, so moving the pointer across threads
// cannot create aliased mutable access.
unsafe impl Send for SendPtr {}
// SAFETY: `&SendPtr` exposes only the pointer value; every dereference
// site documents and upholds the disjoint-region contract.
unsafe impl Sync for SendPtr {}

/// Geometry of a 2-D convolution over a `[channels, height, width]` image.
///
/// Strides and paddings are independent per axis so the paper's EEG network
/// (Table I: kernel 30×1 with padding 15 along time only, pooling 30×1 with
/// stride 15×1) maps directly.
///
/// ```
/// use rbnn_tensor::Conv2dGeom;
/// // EEG "conv in time": 960×64 single-channel image, kernel (30, 1),
/// // padding (15, 0) → output 961×64.
/// let g = Conv2dGeom::new(1, 960, 64, (30, 1), (1, 1), (15, 0));
/// assert_eq!((g.out_h(), g.out_w()), (961, 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeom {
    /// Input channel count.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride along height.
    pub stride_h: usize,
    /// Stride along width.
    pub stride_w: usize,
    /// Symmetric zero padding along height.
    pub pad_h: usize,
    /// Symmetric zero padding along width.
    pub pad_w: usize,
}

impl Conv2dGeom {
    /// Creates a geometry descriptor with `(height, width)` tuples for
    /// kernel, stride and padding.
    ///
    /// # Panics
    ///
    /// Panics if a stride or kernel extent is zero, or the padded image is
    /// smaller than the kernel.
    pub fn new(
        channels: usize,
        height: usize,
        width: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Self {
        let (kernel_h, kernel_w) = kernel;
        let (stride_h, stride_w) = stride;
        let (pad_h, pad_w) = padding;
        assert!(stride_h > 0 && stride_w > 0, "stride must be positive");
        assert!(kernel_h > 0 && kernel_w > 0, "kernel must be positive");
        assert!(
            height + 2 * pad_h >= kernel_h && width + 2 * pad_w >= kernel_w,
            "kernel ({kernel_h}×{kernel_w}) larger than padded image ({}×{})",
            height + 2 * pad_h,
            width + 2 * pad_w,
        );
        Self {
            channels,
            height,
            width,
            kernel_h,
            kernel_w,
            stride_h,
            stride_w,
            pad_h,
            pad_w,
        }
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.height + 2 * self.pad_h - self.kernel_h) / self.stride_h + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.width + 2 * self.pad_w - self.kernel_w) / self.stride_w + 1
    }

    /// Rows of the patch matrix (`channels · kernel_h · kernel_w`).
    pub fn patch_rows(&self) -> usize {
        self.channels * self.kernel_h * self.kernel_w
    }
}

/// Builds the `[channels·kh·kw, out_h·out_w]` patch matrix of `input`.
///
/// # Panics
///
/// Panics if `input` is not `[channels, height, width]` as described by
/// `geom`.
pub fn im2col2d(input: &Tensor, geom: &Conv2dGeom) -> Tensor {
    assert_eq!(
        input.dims(),
        &[geom.channels, geom.height, geom.width],
        "im2col2d: input shape {:?} does not match geometry",
        input.dims()
    );
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut cols = Tensor::zeros([geom.patch_rows(), oh * ow]);
    let src = input.as_slice();
    let dst = cols.as_mut_slice();
    let plane = geom.height * geom.width;
    for c in 0..geom.channels {
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let row = (c * geom.kernel_h + ky) * geom.kernel_w + kx;
                let base = row * oh * ow;
                for oy in 0..oh {
                    let iy = oy * geom.stride_h + ky;
                    if iy < geom.pad_h || iy >= geom.pad_h + geom.height {
                        continue;
                    }
                    let iy = iy - geom.pad_h;
                    for ox in 0..ow {
                        let ix = ox * geom.stride_w + kx;
                        if ix < geom.pad_w || ix >= geom.pad_w + geom.width {
                            continue;
                        }
                        let ix = ix - geom.pad_w;
                        dst[base + oy * ow + ox] = src[c * plane + iy * geom.width + ix];
                    }
                }
            }
        }
    }
    cols
}

/// Adjoint of [`im2col2d`].
///
/// # Panics
///
/// Panics if `grad_cols` is not `[channels·kh·kw, out_h·out_w]`.
pub fn im2col2d_backward(grad_cols: &Tensor, geom: &Conv2dGeom) -> Tensor {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(
        grad_cols.dims(),
        &[geom.patch_rows(), oh * ow],
        "im2col2d_backward: gradient shape {:?} does not match geometry",
        grad_cols.dims()
    );
    let mut grad_input = Tensor::zeros([geom.channels, geom.height, geom.width]);
    let src = grad_cols.as_slice();
    let dst = grad_input.as_mut_slice();
    let plane = geom.height * geom.width;
    for c in 0..geom.channels {
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let row = (c * geom.kernel_h + ky) * geom.kernel_w + kx;
                let base = row * oh * ow;
                for oy in 0..oh {
                    let iy = oy * geom.stride_h + ky;
                    if iy < geom.pad_h || iy >= geom.pad_h + geom.height {
                        continue;
                    }
                    let iy = iy - geom.pad_h;
                    for ox in 0..ow {
                        let ix = ox * geom.stride_w + kx;
                        if ix < geom.pad_w || ix >= geom.pad_w + geom.width {
                            continue;
                        }
                        let ix = ix - geom.pad_w;
                        dst[c * plane + iy * geom.width + ix] += src[base + oy * ow + ox];
                    }
                }
            }
        }
    }
    grad_input
}

/// Writes one sample's 2-D patch matrix into a batched `[rows, ld]` buffer
/// at column offset `col0` (all positions written; padding becomes zero).
///
/// # Safety
///
/// As for [`im2col1d_write`]: `dst` must cover `rows · ld` f32s and the
/// `oh·ow`-wide column block at `col0` must be exclusively this caller's.
unsafe fn im2col2d_write(src: &[f32], geom: &Conv2dGeom, dst: *mut f32, col0: usize, ld: usize) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let plane = geom.height * geom.width;
    for c in 0..geom.channels {
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let row = (c * geom.kernel_h + ky) * geom.kernel_w + kx;
                // SAFETY: caller contract (`# Safety` above) — `dst` covers
                // `rows · ld` f32s with `row < patch_rows` and
                // `col0 + oh·ow <= ld`, and this worker exclusively owns
                // the column block at `col0`, so the segment is in bounds
                // and unaliased.
                let seg = // SAFETY: see block comment above.
                    unsafe { std::slice::from_raw_parts_mut(dst.add(row * ld + col0), oh * ow) };
                for oy in 0..oh {
                    let iy = oy * geom.stride_h + ky;
                    let in_h = iy >= geom.pad_h && iy < geom.pad_h + geom.height;
                    for ox in 0..ow {
                        let ix = ox * geom.stride_w + kx;
                        seg[oy * ow + ox] =
                            if in_h && ix >= geom.pad_w && ix < geom.pad_w + geom.width {
                                src[c * plane + (iy - geom.pad_h) * geom.width + (ix - geom.pad_w)]
                            } else {
                                0.0
                            };
                    }
                }
            }
        }
    }
}

/// Accumulates one sample's 2-D patch-matrix gradient into its
/// `[channels, height, width]` input-gradient slice.
fn im2col2d_scatter(src: &[f32], geom: &Conv2dGeom, col0: usize, ld: usize, dst: &mut [f32]) {
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let plane = geom.height * geom.width;
    for c in 0..geom.channels {
        for ky in 0..geom.kernel_h {
            for kx in 0..geom.kernel_w {
                let row = (c * geom.kernel_h + ky) * geom.kernel_w + kx;
                let base = row * ld + col0;
                for oy in 0..oh {
                    let iy = oy * geom.stride_h + ky;
                    if iy < geom.pad_h || iy >= geom.pad_h + geom.height {
                        continue;
                    }
                    let iy = iy - geom.pad_h;
                    for ox in 0..ow {
                        let ix = ox * geom.stride_w + kx;
                        if ix < geom.pad_w || ix >= geom.pad_w + geom.width {
                            continue;
                        }
                        let ix = ix - geom.pad_w;
                        dst[c * plane + iy * geom.width + ix] += src[base + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Builds the batched 2-D patch matrix `[patch_rows, n · oh · ow]` of a
/// `[n, channels, h, w]` batch into `cols_all` (resized in place, reusing
/// its allocation); sample `i` occupies columns `i·oh·ow .. (i+1)·oh·ow`.
/// Parallel over samples; deterministic.
///
/// # Panics
///
/// Panics if `x` is not `[n, channels, h, w]` as described by `geom`.
pub fn im2col2d_batch(x: &Tensor, geom: &Conv2dGeom, cols_all: &mut Tensor) {
    assert_eq!(x.shape().ndim(), 4, "im2col2d_batch expects [n, c, h, w]");
    let n = x.dim(0);
    assert_eq!(
        (x.dim(1), x.dim(2), x.dim(3)),
        (geom.channels, geom.height, geom.width),
        "im2col2d_batch: sample shape does not match geometry"
    );
    let plane_out = geom.out_h() * geom.out_w();
    let ld = n * plane_out;
    // The writer fills every element (padding zeros included), so the
    // buffer does not need pre-zeroing.
    cols_all.resize_for_overwrite([geom.patch_rows(), ld]);
    let xs = x.as_slice();
    let sample = geom.channels * geom.height * geom.width;
    let dst = SendPtr(cols_all.as_mut_slice().as_mut_ptr());
    let dst = &dst;
    par::par_for(n, |i| {
        // SAFETY: `cols_all` was resized to `[patch_rows, n · oh · ow]`, so
        // the pointer covers every write; as in `im2col1d_batch`, sample i
        // owns the disjoint column block i·oh·ow… and only row-segment
        // slices inside it are materialized, never a whole-buffer `&mut`.
        unsafe {
            im2col2d_write(
                &xs[i * sample..(i + 1) * sample],
                geom,
                dst.0,
                i * plane_out,
                ld,
            );
        }
    });
}

/// Adjoint of [`im2col2d_batch`]: scatters `[patch_rows, n · oh · ow]` into
/// `grad_x` (`[n, channels, h, w]`, resized and zeroed in place). Parallel
/// over samples; deterministic.
///
/// # Panics
///
/// Panics if `gcols_all`'s shape does not match `geom` for some batch size.
pub fn im2col2d_batch_backward(gcols_all: &Tensor, geom: &Conv2dGeom, grad_x: &mut Tensor) {
    let plane_out = geom.out_h() * geom.out_w();
    assert_eq!(gcols_all.dim(0), geom.patch_rows(), "patch row mismatch");
    let ld = gcols_all.dim(1);
    assert_eq!(ld % plane_out, 0, "column count not a multiple of oh·ow");
    let n = ld / plane_out;
    grad_x.resize_zeroed([n, geom.channels, geom.height, geom.width]);
    let src = gcols_all.as_slice();
    let sample = geom.channels * geom.height * geom.width;
    let dst = SendPtr(grad_x.as_mut_slice().as_mut_ptr());
    let dst = &dst;
    par::par_for(n, |i| {
        // SAFETY: `grad_x` was resized to `[n, channels, h, w]`, so slice
        // `i·sample..(i+1)·sample` is in bounds; one worker per sample
        // index keeps the slices disjoint.
        let dsti = unsafe { std::slice::from_raw_parts_mut(dst.0.add(i * sample), sample) };
        im2col2d_scatter(src, geom, i * plane_out, ld, dsti);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Direct (definition-level) 1-D convolution for cross-checking.
    fn naive_conv1d(input: &Tensor, weight: &Tensor, geom: &Conv1dGeom) -> Tensor {
        let co = weight.dim(0);
        let out_len = geom.out_len();
        let mut out = Tensor::zeros([co, out_len]);
        for o in 0..co {
            for t in 0..out_len {
                let mut acc = 0.0;
                for c in 0..geom.channels {
                    for kk in 0..geom.kernel {
                        let pos =
                            t as isize * geom.stride as isize + kk as isize - geom.padding as isize;
                        if pos >= 0 && (pos as usize) < geom.len {
                            acc += input.at(&[c, pos as usize])
                                * weight.at(&[o, c * geom.kernel + kk]);
                        }
                    }
                }
                *out.at_mut(&[o, t]) = acc;
            }
        }
        out
    }

    #[test]
    fn table1_table2_output_shapes() {
        // Paper Table I: conv(30×1, pad 15×0) over a 960×64 image → 961×64.
        let g1 = Conv2dGeom::new(1, 960, 64, (30, 1), (1, 1), (15, 0));
        assert_eq!((g1.out_h(), g1.out_w()), (961, 64));
        // Conv in space: kernel 1×64 over 961×64 → 961×1.
        let g2 = Conv2dGeom::new(40, 961, 64, (1, 64), (1, 1), (0, 0));
        assert_eq!((g2.out_h(), g2.out_w()), (961, 1));
        // Avg pool 30×1 stride 15 → 63×1.
        let gp = Conv2dGeom::new(40, 961, 1, (30, 1), (15, 1), (0, 0));
        assert_eq!((gp.out_h(), gp.out_w()), (63, 1));
        // Paper Table II: conv(13, no pad) over 750 samples → 738 steps.
        assert_eq!(Conv1dGeom::new(12, 750, 13, 1, 0).out_len(), 738);
    }

    #[test]
    fn im2col1d_conv_matches_naive() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(c, l, k, s, p) in &[(1, 10, 3, 1, 0), (2, 16, 5, 2, 2), (3, 9, 3, 1, 1)] {
            let geom = Conv1dGeom::new(c, l, k, s, p);
            let input = Tensor::randn([c, l], 1.0, &mut rng);
            let weight = Tensor::randn([4, c * k], 1.0, &mut rng);
            let cols = im2col1d(&input, &geom);
            let fast = weight.matmul(&cols);
            let slow = naive_conv1d(&input, &weight, &geom);
            assert!(fast.allclose(&slow, 1e-4), "mismatch for {geom:?}");
        }
    }

    #[test]
    fn im2col1d_backward_is_adjoint() {
        // <im2col(x), y> == <x, im2col_backward(y)> for all x, y — the
        // defining property of the adjoint, checked with random probes.
        let mut rng = StdRng::seed_from_u64(13);
        let geom = Conv1dGeom::new(3, 12, 4, 2, 1);
        let x = Tensor::randn([3, 12], 1.0, &mut rng);
        let y = Tensor::randn([geom.patch_rows(), geom.out_len()], 1.0, &mut rng);
        let lhs = im2col1d(&x, &geom).dot(&y);
        let rhs = x.dot(&im2col1d_backward(&y, &geom));
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn im2col2d_identity_kernel_is_flatten() {
        let geom = Conv2dGeom::new(1, 4, 4, (1, 1), (1, 1), (0, 0));
        let input = Tensor::from_fn([1, 4, 4], |i| i as f32);
        let cols = im2col2d(&input, &geom);
        assert_eq!(cols.dims(), &[1, 16]);
        assert_eq!(cols.as_slice(), input.as_slice());
    }

    #[test]
    fn im2col2d_backward_is_adjoint() {
        let mut rng = StdRng::seed_from_u64(17);
        let geom = Conv2dGeom::new(2, 6, 5, (3, 3), (2, 2), (1, 1));
        let x = Tensor::randn([2, 6, 5], 1.0, &mut rng);
        let y = Tensor::randn(
            [geom.patch_rows(), geom.out_h() * geom.out_w()],
            1.0,
            &mut rng,
        );
        let lhs = im2col2d(&x, &geom).dot(&y);
        let rhs = x.dot(&im2col2d_backward(&y, &geom));
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn asymmetric_padding_only_pads_requested_axis() {
        // Padding along height only: a kernel tap reaching above the image
        // reads zero, but width is never padded.
        let geom = Conv2dGeom::new(1, 3, 3, (3, 3), (1, 1), (1, 0));
        let input = Tensor::ones([1, 3, 3]);
        let cols = im2col2d(&input, &geom);
        assert_eq!((geom.out_h(), geom.out_w()), (3, 1));
        // Row 0 = tap (ky=0, kx=0); first output row reads padding → 0.
        assert_eq!(cols.at(&[0, 0]), 0.0);
        // Centre tap always reads real pixels.
        assert_eq!(cols.at(&[4, 0]), 1.0);
    }

    #[test]
    fn padding_produces_zero_rows() {
        let geom = Conv1dGeom::new(1, 4, 3, 1, 1);
        let input = Tensor::ones([1, 4]);
        let cols = im2col1d(&input, &geom);
        // First column, first tap reaches into the left padding.
        assert_eq!(cols.at(&[0, 0]), 0.0);
        // Interior taps are ones.
        assert_eq!(cols.at(&[1, 0]), 1.0);
    }

    #[test]
    fn batch_helpers_match_per_sample_reference() {
        let mut rng = StdRng::seed_from_u64(19);
        let geom = Conv1dGeom::new(3, 12, 4, 2, 1);
        let n = 5;
        let x = Tensor::randn([n, 3, 12], 1.0, &mut rng);
        let (rows, out_len) = (geom.patch_rows(), geom.out_len());
        let mut cols_all = Tensor::default();
        im2col1d_batch(&x, &geom, &mut cols_all);
        assert_eq!(cols_all.dims(), &[rows, n * out_len]);
        for i in 0..n {
            let expect = im2col1d(&x.index_axis0(i), &geom);
            for r in 0..rows {
                for t in 0..out_len {
                    assert_eq!(
                        cols_all.at(&[r, i * out_len + t]),
                        expect.at(&[r, t]),
                        "sample {i} ({r},{t})"
                    );
                }
            }
        }
        // Backward: scatter the batched gradient and compare per sample.
        let g = Tensor::randn([rows, n * out_len], 1.0, &mut rng);
        let mut gx = Tensor::default();
        im2col1d_batch_backward(&g, &geom, &mut gx);
        assert_eq!(gx.dims(), &[n, 3, 12]);
        for i in 0..n {
            let mut gi = Tensor::zeros([rows, out_len]);
            for r in 0..rows {
                for t in 0..out_len {
                    *gi.at_mut(&[r, t]) = g.at(&[r, i * out_len + t]);
                }
            }
            let expect = im2col1d_backward(&gi, &geom);
            assert!(gx.index_axis0(i).allclose(&expect, 1e-6), "sample {i}");
        }
    }

    #[test]
    fn batch_helpers_2d_match_per_sample_reference() {
        let mut rng = StdRng::seed_from_u64(23);
        let geom = Conv2dGeom::new(2, 6, 5, (3, 3), (2, 2), (1, 1));
        let n = 3;
        let x = Tensor::randn([n, 2, 6, 5], 1.0, &mut rng);
        let (rows, plane) = (geom.patch_rows(), geom.out_h() * geom.out_w());
        let mut cols_all = Tensor::default();
        im2col2d_batch(&x, &geom, &mut cols_all);
        assert_eq!(cols_all.dims(), &[rows, n * plane]);
        for i in 0..n {
            let expect = im2col2d(&x.index_axis0(i), &geom);
            for r in 0..rows {
                for t in 0..plane {
                    assert_eq!(
                        cols_all.at(&[r, i * plane + t]),
                        expect.at(&[r, t]),
                        "sample {i} ({r},{t})"
                    );
                }
            }
        }
        let g = Tensor::randn([rows, n * plane], 1.0, &mut rng);
        let mut gx = Tensor::default();
        im2col2d_batch_backward(&g, &geom, &mut gx);
        for i in 0..n {
            let mut gi = Tensor::zeros([rows, plane]);
            for r in 0..rows {
                for t in 0..plane {
                    *gi.at_mut(&[r, t]) = g.at(&[r, i * plane + t]);
                }
            }
            let expect = im2col2d_backward(&gi, &geom);
            assert!(gx.index_axis0(i).allclose(&expect, 1e-6), "sample {i}");
        }
    }

    #[test]
    #[should_panic(expected = "does not match geometry")]
    fn im2col1d_rejects_wrong_shape() {
        let geom = Conv1dGeom::new(2, 8, 3, 1, 0);
        let input = Tensor::zeros([2, 9]);
        let _ = im2col1d(&input, &geom);
    }
}
