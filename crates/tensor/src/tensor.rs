//! The `f32` N-dimensional array at the heart of the workspace.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use rand::Rng;

use crate::Shape;

/// A contiguous, row-major, `f32` N-dimensional array.
///
/// `Tensor` provides exactly the operations the rram-bnn training and
/// inference stack needs; it is intentionally small rather than general.
/// Binary (±1) data uses [`BitVec`](crate::BitVec) /
/// [`BitMatrix`](crate::BitMatrix) instead.
///
/// ```
/// use rbnn_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
/// assert_eq!(x.map(f32::abs).sum(), 6.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

/// Index of the maximum element of a slice (first occurrence; 0 for an
/// empty slice) — the shared argmax behind every classification path.
#[inline]
pub fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &v) in xs.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Self {
            data: vec![0.0; shape.numel()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Self {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements implied by
    /// `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.numel(),
            "buffer of {} elements cannot have shape {}",
            data.len(),
            shape
        );
        Self { data, shape }
    }

    /// Creates a tensor by calling `f(flat_index)` for every element.
    pub fn from_fn(shape: impl Into<Shape>, mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(&mut f).collect();
        Self { data, shape }
    }

    /// Samples every element i.i.d. from `N(0, std²)` using the Box–Muller
    /// transform on the supplied RNG (keeps the whole workspace reproducible
    /// from a single seed).
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.numel();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Self { data, shape }
    }

    /// Samples every element i.i.d. from the uniform distribution over
    /// `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let data = (0..shape.numel()).map(|_| rng.gen_range(lo..hi)).collect();
        Self { data, shape }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Extent of dimension `axis`.
    pub fn dim(&self, axis: usize) -> usize {
        self.shape.dim(axis)
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or a coordinate is out of range.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or a coordinate is out of range.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns the contiguous sub-tensor at position `i` of the leading axis.
    ///
    /// For a `[N, C, L]` tensor this is sample `i` with shape `[C, L]`.
    ///
    /// # Panics
    ///
    /// Panics on a scalar tensor or if `i` is out of range.
    pub fn index_axis0(&self, i: usize) -> Tensor {
        assert!(self.shape.ndim() >= 1, "cannot index a scalar tensor");
        let n = self.shape.dim(0);
        assert!(
            i < n,
            "index {i} out of range for leading axis of extent {n}"
        );
        let inner: Vec<usize> = self.shape.dims()[1..].to_vec();
        let stride: usize = inner.iter().product();
        let data = self.data[i * stride..(i + 1) * stride].to_vec();
        Tensor::from_vec(data, inner)
    }

    /// Writes `src` into position `i` of the leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `src`'s shape does not match this tensor's trailing
    /// dimensions or `i` is out of range.
    pub fn set_axis0(&mut self, i: usize, src: &Tensor) {
        assert!(self.shape.ndim() >= 1, "cannot index a scalar tensor");
        let n = self.shape.dim(0);
        assert!(
            i < n,
            "index {i} out of range for leading axis of extent {n}"
        );
        let inner: Vec<usize> = self.shape.dims()[1..].to_vec();
        assert_eq!(src.dims(), &inner[..], "sub-tensor shape mismatch");
        let stride: usize = inner.iter().product();
        self.data[i * stride..(i + 1) * stride].copy_from_slice(src.as_slice());
    }

    /// Reshapes this tensor to `shape` and fills it with zeros, reusing the
    /// existing allocation when it is large enough.
    ///
    /// This is the zero-alloc counterpart of `Tensor::zeros` for buffers
    /// that live across batches (GEMM outputs, caches, batch buffers).
    pub fn resize_zeroed(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        let n = shape.numel();
        self.data.clear();
        self.data.resize(n, 0.0);
        if self.shape != shape {
            self.shape = shape;
        }
    }

    /// Reshapes this tensor to `shape` reusing its allocation, leaving the
    /// element values **unspecified** (a mix of prior contents and zeros).
    ///
    /// For buffers about to be fully overwritten (GEMM outputs, gathered
    /// batches); use [`resize_zeroed`](Self::resize_zeroed) when the code
    /// that follows only accumulates.
    pub fn resize_for_overwrite(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        let n = shape.numel();
        if self.data.len() != n {
            self.data.resize(n, 0.0);
        }
        if self.shape != shape {
            self.shape = shape;
        }
    }

    /// Overwrites this tensor with a copy of `src`, reusing the existing
    /// allocation when it is large enough (the zero-alloc counterpart of
    /// `clone` for cache fields refreshed every batch).
    pub fn copy_from(&mut self, src: &Tensor) {
        self.data.clear();
        self.data.extend_from_slice(&src.data);
        if self.shape != src.shape {
            self.shape = src.shape.clone();
        }
    }

    /// Gathers `indices` of the leading axis of `self` into `out`
    /// (`[indices.len(), …]`), reusing `out`'s allocation.
    ///
    /// This replaces the per-sample `index_axis0` + `stack` batch assembly
    /// (two full copies and `O(batch)` allocations per step) with a single
    /// copy into a buffer reused across the epoch.
    ///
    /// # Panics
    ///
    /// Panics on a scalar tensor or if an index is out of range.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Tensor) {
        assert!(self.shape.ndim() >= 1, "cannot gather a scalar tensor");
        let n = self.shape.dim(0);
        let stride: usize = self.shape.dims()[1..].iter().product();
        out.data.clear();
        out.data.reserve(indices.len() * stride);
        for &i in indices {
            assert!(
                i < n,
                "index {i} out of range for leading axis of extent {n}"
            );
            out.data
                .extend_from_slice(&self.data[i * stride..(i + 1) * stride]);
        }
        let mut dims = Vec::with_capacity(self.shape.ndim());
        dims.push(indices.len());
        dims.extend_from_slice(&self.shape.dims()[1..]);
        if out.shape.dims() != dims {
            out.shape = Shape::new(&dims);
        }
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "cannot stack an empty list of tensors");
        let inner = items[0].shape().clone();
        let mut dims = vec![items.len()];
        dims.extend_from_slice(inner.dims());
        let mut out = Tensor::zeros(dims);
        for (i, t) in items.iter().enumerate() {
            assert_eq!(t.shape(), &inner, "stack: shape mismatch at item {i}");
            out.set_axis0(i, t);
        }
        out
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into {}",
            self.numel(),
            shape
        );
        Tensor {
            data: self.data.clone(),
            shape,
        }
    }

    /// In-place variant of [`reshape`](Self::reshape); avoids the copy.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: impl Into<Shape>) {
        let shape = shape.into();
        assert_eq!(
            shape.numel(),
            self.numel(),
            "cannot reshape {} elements into {}",
            self.numel(),
            shape
        );
        self.shape = shape;
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.ndim(), 2, "transpose requires a 2-D tensor");
        let (r, c) = (self.dim(0), self.dim(1));
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Elementwise operations
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip: shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Adds `other * scale` into `self` (`axpy`), in place.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.shape, other.shape, "add_scaled: shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Multiplies every element by `s`, in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Sets every element to zero (reuses the allocation).
    pub fn fill(&mut self, value: f32) {
        for x in &mut self.data {
            *x = value;
        }
    }

    /// The elementwise sign with `sign(0) = +1`, as used for BNN weight and
    /// activation binarization (a weight of exactly 0 maps to +1 so every
    /// synapse has a definite differential state). Semantics — including
    /// NaN → −1 and `-0.0` → +1 — are pinned by the canonical
    /// [`sign_bit`](crate::sign_bit) predicate shared with the bit-packing
    /// kernels.
    pub fn signum_binary(&self) -> Tensor {
        self.map(|x| if crate::sign_bit(x) { 1.0 } else { -1.0 })
    }

    /// [`signum_binary`](Self::signum_binary) written into `dst`, reusing
    /// its allocation — the zero-alloc effective-weight refresh every
    /// binarized layer performs each batch.
    pub fn signum_binary_into(&self, dst: &mut Tensor) {
        dst.resize_for_overwrite(self.shape.clone());
        for (d, &x) in dst.data.iter_mut().zip(&self.data) {
            *d = if crate::sign_bit(x) { 1.0 } else { -1.0 };
        }
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Population variance of all elements.
    pub fn variance(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        self.data.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / self.data.len() as f32
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence; 0 for empty).
    pub fn argmax(&self) -> usize {
        argmax(&self.data)
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Dot product with a same-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "dot: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// True if every pairwise difference is at most `tol` in absolute value.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}", self.shape)?;
        if self.numel() <= 8 {
            write!(f, ", {:?}", self.data)?;
        } else {
            write!(
                f,
                ", [{:.4}, {:.4}, … ; mean {:.4}]",
                self.data[0],
                self.data[1],
                self.mean()
            )?;
        }
        write!(f, ")")
    }
}

macro_rules! elementwise_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip(rhs, |a, b| a $op b)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| a $op rhs)
            }
        }
    };
}

elementwise_binop!(Add, add, +);
elementwise_binop!(Sub, sub, -);
elementwise_binop!(Mul, mul, *);
elementwise_binop!(Div, div, /);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|a| -a)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.add_scaled(rhs, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros([2, 3]).sum(), 0.0);
        assert_eq!(Tensor::ones([2, 3]).sum(), 6.0);
        assert_eq!(Tensor::full([4], 2.5).sum(), 10.0);
        let e = Tensor::eye(3);
        assert_eq!(e.sum(), 3.0);
        assert_eq!(e.at(&[1, 1]), 1.0);
        assert_eq!(e.at(&[0, 1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_bad_len_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn([10_000], 2.0, &mut rng);
        assert!(t.mean().abs() < 0.1, "mean {} too far from 0", t.mean());
        assert!(
            (t.variance().sqrt() - 2.0).abs() < 0.1,
            "std {} too far from 2",
            t.variance().sqrt()
        );
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform([1000], -1.0, 1.0, &mut rng);
        assert!(t.min() >= -1.0 && t.max() < 1.0);
    }

    #[test]
    fn indexing_roundtrip() {
        let t = Tensor::from_fn([2, 3, 4], |i| i as f32);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2, 3]), 23.0);
        let s = t.index_axis0(1);
        assert_eq!(s.dims(), &[3, 4]);
        assert_eq!(s.at(&[0, 0]), 12.0);
        let mut u = Tensor::zeros([2, 3, 4]);
        u.set_axis0(1, &s);
        assert_eq!(u.at(&[1, 2, 3]), 23.0);
        assert_eq!(u.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    fn gather_rows_into_matches_stack_of_index_axis0() {
        let x = Tensor::from_fn([4, 2, 3], |i| i as f32);
        let idx = [2usize, 0, 2];
        let expect = Tensor::stack(&idx.iter().map(|&i| x.index_axis0(i)).collect::<Vec<_>>());
        let mut out = Tensor::zeros([50]); // stale shape and spare capacity
        let cap = out.as_slice().as_ptr();
        x.gather_rows_into(&idx, &mut out);
        assert_eq!(out, expect);
        assert_eq!(out.as_slice().as_ptr(), cap, "must reuse the allocation");
        // Partial batch reuses the same buffer at a smaller leading extent.
        x.gather_rows_into(&[1], &mut out);
        assert_eq!(out.dims(), &[1, 2, 3]);
        assert_eq!(out.as_slice(), x.index_axis0(1).as_slice());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rows_into_rejects_bad_index() {
        let x = Tensor::zeros([2, 2]);
        let mut out = Tensor::default();
        x.gather_rows_into(&[2], &mut out);
    }

    #[test]
    fn resize_zeroed_and_copy_from_reuse_allocations() {
        let mut t = Tensor::full([10], 3.0);
        let ptr = t.as_slice().as_ptr();
        t.resize_zeroed([2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.as_slice().as_ptr(), ptr);
        let src = Tensor::from_fn([4], |i| i as f32);
        t.copy_from(&src);
        assert_eq!(t, src);
        assert_eq!(t.as_slice().as_ptr(), ptr);
    }

    #[test]
    fn stack_unstack() {
        let a = Tensor::full([2, 2], 1.0);
        let b = Tensor::full([2, 2], 2.0);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.dims(), &[2, 2, 2]);
        assert_eq!(s.index_axis0(0), a);
        assert_eq!(s.index_axis0(1), b);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_fn([3, 5], |i| i as f32);
        let tt = t.transpose().transpose();
        assert_eq!(t, tt);
        assert_eq!(t.transpose().at(&[4, 2]), t.at(&[2, 4]));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, -2.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 8.0]);
        assert_eq!((&b / &a).as_slice(), &[3.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn signum_binary_maps_zero_to_plus_one() {
        let t = Tensor::from_vec(vec![-0.5, 0.0, 0.5], &[3]);
        assert_eq!(t.signum_binary().as_slice(), &[-1.0, 1.0, 1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -3.0, 2.0], &[3]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.max(), 2.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.argmax(), 2);
        assert_eq!(t.norm_sq(), 14.0);
        assert!((t.mean() - 0.0).abs() < 1e-6);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn([2, 6], |i| i as f32);
        let r = t.reshape([3, 4]);
        assert_eq!(r.dims(), &[3, 4]);
        assert_eq!(r.as_slice(), t.as_slice());
    }

    #[test]
    fn add_scaled_axpy() {
        let mut a = Tensor::ones([3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.add_scaled(&b, -2.0);
        assert_eq!(a.as_slice(), &[-1.0, -3.0, -5.0]);
    }

    #[test]
    fn allclose_tolerates_small_differences() {
        let a = Tensor::ones([4]);
        let mut b = Tensor::ones([4]);
        b.as_mut_slice()[2] += 1e-6;
        assert!(a.allclose(&b, 1e-5));
        b.as_mut_slice()[2] += 1.0;
        assert!(!a.allclose(&b, 1e-5));
    }
}
