//! Shape bookkeeping for contiguous, row-major tensors.

use std::fmt;

/// The dimensions of a [`Tensor`](crate::Tensor).
///
/// A `Shape` is an ordered list of dimension extents, e.g. `[batch, channels,
/// length]` for a 1-D signal batch. Tensors in this crate are always
/// contiguous and row-major, so the shape fully determines the memory layout.
///
/// ```
/// use rbnn_tensor::Shape;
///
/// let s = Shape::new(&[4, 64, 960]);
/// assert_eq!(s.numel(), 4 * 64 * 960);
/// assert_eq!(s.ndim(), 3);
/// assert_eq!(s.dim(1), 64);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    ///
    /// A zero-dimensional shape (`&[]`) denotes a scalar with one element.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// All dimension extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements (product of all extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// ```
    /// use rbnn_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank differs from the shape rank or any coordinate
    /// is out of range (debug builds check every coordinate).
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let mut stride = 1;
        for axis in (0..self.dims.len()).rev() {
            debug_assert!(
                index[axis] < self.dims[axis],
                "index {} out of range for axis {} with extent {}",
                index[axis],
                axis,
                self.dims[axis]
            );
            off += index[axis] * stride;
            stride *= self.dims[axis];
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

impl<const N: usize> From<&[usize; N]> for Shape {
    fn from(dims: &[usize; N]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_ndim() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[2, 3]).strides(), vec![3, 1]);
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        let strides = s.strides();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let expect = i * strides[0] + j * strides[1] + k * strides[2];
                    assert_eq!(s.offset(&[i, j, k]), expect);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "index rank")]
    fn offset_wrong_rank_panics() {
        Shape::new(&[2, 3]).offset(&[1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(&[961, 64, 40]).to_string(), "[961×64×40]");
    }

    #[test]
    fn conversions() {
        let a: Shape = [2usize, 3].into();
        let b: Shape = vec![2usize, 3].into();
        let c: Shape = (&[2usize, 3][..]).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }
}
