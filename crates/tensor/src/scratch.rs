//! A reusable buffer arena for allocation-free training loops.
//!
//! Every layer of the training stack needs short-lived `f32` buffers each
//! batch: im2col patch matrices, GEMM outputs, activation maps, gradients.
//! Allocating them per batch puts the allocator on the hot path; [`Scratch`]
//! keeps a pool of retired buffers and hands them back out, so after the
//! first batch the steady-state pipeline performs no heap allocation for
//! tensor data.
//!
//! The arena is deliberately simple: a free list of `Vec<f32>` with best-fit
//! reuse. Buffers enter the pool through [`Scratch::recycle`] and leave
//! through [`Scratch::tensor`]; a tensor taken from the arena is an ordinary
//! owned [`Tensor`] (nothing borrows the arena), so layers can cache or
//! return it freely and recycle it whenever it dies.
//!
//! ```
//! use rbnn_tensor::{Scratch, Tensor};
//!
//! let mut scratch = Scratch::new();
//! let a = scratch.tensor([64, 64]);          // first batch: allocates
//! let ptr = a.as_slice().as_ptr();
//! scratch.recycle(a);
//! let b = scratch.tensor([32, 32]);          // steady state: reuses
//! assert_eq!(b.as_slice().as_ptr(), ptr);
//! assert_eq!(b.sum(), 0.0);                  // always handed out zeroed
//! ```

use crate::{Shape, Tensor};

/// Retired buffers kept per arena; beyond this the smallest is dropped so a
/// shape churn (e.g. switching models) cannot grow the pool without bound.
const MAX_POOLED: usize = 64;

/// A free-list arena of `f32` buffers (see the `scratch` module docs).
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently pooled (diagnostics/tests).
    pub fn pooled(&self) -> usize {
        self.free.len()
    }

    /// Takes a zero-filled tensor of the given shape, reusing a pooled
    /// buffer when one exists.
    pub fn tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let mut buf = self.grab(n);
        buf.clear();
        buf.resize(n, 0.0);
        Tensor::from_vec(buf, shape)
    }

    /// Takes a tensor of the given shape with **unspecified** element
    /// values (recycled contents), for buffers the caller fully overwrites
    /// — e.g. the `out` argument of the `matmul_*_into` kernels. Use
    /// [`tensor`](Self::tensor) when downstream code only accumulates.
    pub fn tensor_for_overwrite(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        let mut buf = self.grab(n);
        buf.resize(n, 0.0);
        Tensor::from_vec(buf, shape)
    }

    /// Drops every pooled buffer, releasing the arena's high-water memory.
    ///
    /// Best-fit reuse never shrinks a pooled buffer, so after serving a
    /// large model the pool retains blocks sized for it even when every
    /// later model is small (eviction only caps the *count*, and it keeps
    /// the largest buffers). A worker that swaps models calls this at the
    /// boundary so the next model starts from an empty pool and the large
    /// blocks go back to the allocator.
    pub fn reset_capacity(&mut self) {
        self.free.clear();
        self.free.shrink_to_fit();
    }

    /// Returns a tensor's buffer to the pool.
    pub fn recycle(&mut self, t: Tensor) {
        self.recycle_vec(t.into_vec());
    }

    /// Returns a raw buffer to the pool.
    pub fn recycle_vec(&mut self, v: Vec<f32>) {
        if v.capacity() == 0 {
            return;
        }
        self.free.push(v);
        if self.free.len() > MAX_POOLED {
            // Evict the smallest buffer: large ones are the expensive
            // allocations worth keeping.
            if let Some(i) = (0..self.free.len()).min_by_key(|&i| self.free[i].capacity()) {
                self.free.swap_remove(i);
            }
        }
    }

    /// Pops the pooled buffer whose capacity best fits `n` (smallest
    /// capacity ≥ `n`, else the largest available), or a fresh `Vec`.
    fn grab(&mut self, n: usize) -> Vec<f32> {
        if self.free.is_empty() {
            return Vec::with_capacity(n);
        }
        let mut best: Option<usize> = None;
        for (i, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            best = match best {
                None => Some(i),
                Some(j) => {
                    let jcap = self.free[j].capacity();
                    let better = if jcap >= n {
                        cap >= n && cap < jcap
                    } else {
                        cap > jcap
                    };
                    Some(if better { i } else { j })
                }
            };
        }
        self.free.swap_remove(best.expect("non-empty pool"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensors_are_zeroed_even_after_reuse() {
        let mut s = Scratch::new();
        let mut t = s.tensor([4, 4]);
        t.fill(7.0);
        s.recycle(t);
        let t2 = s.tensor([2, 3]);
        assert_eq!(t2.dims(), &[2, 3]);
        assert!(t2.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut s = Scratch::new();
        let small = s.tensor([8]);
        let big = s.tensor([1000]);
        let small_ptr = small.as_slice().as_ptr();
        s.recycle(big);
        s.recycle(small);
        let t = s.tensor([5]);
        assert_eq!(
            t.as_slice().as_ptr(),
            small_ptr,
            "should reuse the 8-slot buffer"
        );
        assert_eq!(s.pooled(), 1);
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = Scratch::new();
        for i in 0..(MAX_POOLED + 40) {
            s.recycle_vec(vec![0.0; i + 1]);
        }
        assert!(s.pooled() <= MAX_POOLED);
        // The largest buffers survive eviction.
        assert!(s.free.iter().any(|b| b.capacity() >= MAX_POOLED + 20));
    }

    #[test]
    fn big_then_small_model_sequence_releases_large_block() {
        let mut s = Scratch::new();
        // A "big model" retires a large buffer into the pool…
        let big = s.tensor([1 << 20]);
        s.recycle(big);
        assert_eq!(s.pooled(), 1);
        // …and without a reset, a later small model would be handed that
        // megabyte block (best-fit keeps it alive forever).
        let reused = s.tensor([8]);
        assert!(reused.as_slice().len() == 8);
        assert!(s.free.is_empty(), "large block was handed back out");
        s.recycle(reused);
        assert!(
            s.free[0].capacity() >= 1 << 20,
            "pool retains the big block"
        );

        // reset_capacity releases the high-water buffers; the next grab is
        // a fresh, small allocation.
        s.reset_capacity();
        assert_eq!(s.pooled(), 0);
        let small = s.tensor([8]);
        assert!(
            small.as_slice().len() == 8 && {
                let v = small.into_vec();
                v.capacity() < 1 << 20
            },
            "post-reset buffer must not be the retained large block"
        );
    }

    #[test]
    fn empty_vec_is_not_pooled() {
        let mut s = Scratch::new();
        s.recycle(Tensor::default());
        assert_eq!(s.pooled(), 0);
    }
}
