//! Runtime-dispatched SIMD kernels with scalar parity oracles.
//!
//! Layout:
//!
//! * [`dispatch`] — CPU-feature detection (`is_x86_feature_detected!`),
//!   the process-global forced-scalar override, and the per-family kernel
//!   selectors + [`dispatch::DispatchReport`] for bench envelopes.
//! * [`popcount`](self) — XNOR-popcount word kernels (scalar /
//!   AVX2 Harley-Seal / AVX-512 VPOPCNTDQ); integer arithmetic, bitwise
//!   equal across all paths unconditionally.
//! * [`pack`](self) — the canonical binarization predicate [`sign_bit`]
//!   and sign-packing kernels (scalar / AVX movemask); bitwise equal
//!   across all paths including NaN and `-0.0` inputs.
//!
//! The f32 GEMM micro-kernels live in [`crate::gemm`] next to the packing
//! and tiling they serve, but select through [`dispatch::gemm_kernel`] the
//! same way. The invariant all of this enforces: **numeric results are
//! host-invariant; the instruction set only changes speed** (see
//! ARCHITECTURE.md § "Kernel dispatch").

pub mod dispatch;
pub(crate) mod pack;
pub(crate) mod popcount;

pub use pack::sign_bit;
