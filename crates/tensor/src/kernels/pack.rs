//! Float sign-packing kernels: the canonical binarization predicate and
//! the word packers built on it.
//!
//! Binarization semantics are pinned **here, once**, by [`sign_bit`]:
//! `x >= 0.0`, so `+0.0` and `-0.0` both binarize to `+1` (IEEE comparison
//! treats them as equal) and NaN binarizes to `-1` (every ordered
//! comparison with NaN is false). `BitVec::from_signs`,
//! `BitMatrix::from_signs`/`from_sign_rows`, `Tensor::signum_binary` and
//! `signum_binary_into` all route through this predicate, and the AVX
//! packer reproduces it exactly (`_CMP_GE_OQ` is ordered-quiet: false on
//! NaN, true on `-0.0 >= +0.0`) — so packed words are bitwise identical
//! across kernels and hosts regardless of input cleanliness.

use super::dispatch::{pack_kernel, PackKernel};

const WORD_BITS: usize = 64;

/// The canonical binarization predicate: `true` (bit 1, value +1) iff
/// `x >= 0.0`. NaN maps to `false` (−1); `-0.0` maps to `true` (+1).
#[inline]
pub fn sign_bit(x: f32) -> bool {
    x >= 0.0
}

/// Packs the signs of `values` into `words`, 64 bits per word, dispatched
/// to the fastest kernel the host supports (forced-scalar override
/// respected). Tail bits beyond `values.len()` are written as zero.
///
/// `words` must hold exactly `values.len().div_ceil(64)` words (checked).
#[inline]
pub(crate) fn pack_signs(values: &[f32], words: &mut [u64]) {
    assert!(
        words.len() == values.len().div_ceil(WORD_BITS),
        "pack_signs: words/values size mismatch"
    );
    match pack_kernel() {
        PackKernel::Scalar => pack_signs_scalar(values, words),
        // SAFETY: `PackKernel::Avx` is only ever selected by
        // `pack_kernel()` after `is_x86_feature_detected!("avx")`
        // confirmed the host executes AVX instructions.
        #[cfg(target_arch = "x86_64")]
        PackKernel::Avx => unsafe { pack_signs_avx(values, words) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => pack_signs_scalar(values, words),
    }
}

/// The canonical scalar packer — branchless bit loop, the parity oracle
/// every SIMD packer must match bit for bit.
#[inline]
pub(crate) fn pack_signs_scalar(values: &[f32], words: &mut [u64]) {
    for (chunk, word) in values.chunks(WORD_BITS).zip(words.iter_mut()) {
        let mut acc = 0u64;
        for (i, &v) in chunk.iter().enumerate() {
            acc |= (sign_bit(v) as u64) << i;
        }
        *word = acc;
    }
}

/// AVX packer: `vcmpps` (ordered-quiet `>=`) plus `vmovmskps` extract
/// 8 sign bits per instruction pair, 64 per packed word.
///
/// # Safety
///
/// Caller must ensure the host supports AVX, and `words` must hold
/// `values.len().div_ceil(64)` words (checked by the dispatch wrapper).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn pack_signs_avx(values: &[f32], words: &mut [u64]) {
    use std::arch::x86_64::*;

    let zero = _mm256_setzero_ps();
    let full = values.len() / WORD_BITS;
    let vp = values.as_ptr();
    let (head, tail) = words.split_at_mut(full.min(words.len()));
    for (w, word) in head.iter_mut().enumerate() {
        let base = vp.add(w * WORD_BITS);
        let mut acc = 0u64;
        for g in 0..8 {
            let v = _mm256_loadu_ps(base.add(g * 8));
            // `_CMP_GE_OQ` matches `sign_bit` exactly: NaN compares false,
            // -0.0 >= +0.0 compares true.
            let m = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(v, zero)) as u32 as u64;
            acc |= m << (g * 8);
        }
        *word = acc;
    }
    // Partial final word: scalar oracle on the remaining < 64 floats.
    if let Some(word) = tail.first_mut() {
        let (_, rest) = values.split_at(full * WORD_BITS);
        let mut acc = 0u64;
        for (i, &v) in rest.iter().enumerate() {
            acc |= (sign_bit(v) as u64) << i;
        }
        *word = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    fn adversarial_values(len: usize, seed: &mut u64) -> Vec<f32> {
        (0..len)
            .map(|i| match i % 7 {
                // Special values every kernel must binarize identically.
                0 => f32::NAN,
                1 => -0.0,
                2 => 0.0,
                3 => f32::NEG_INFINITY,
                4 => f32::INFINITY,
                _ => (xorshift(seed) as i64 as f32) / 1e18,
            })
            .collect()
    }

    #[test]
    fn avx_pack_matches_scalar_bitwise() {
        let mut seed = 0x13198a2e_03707344u64;
        for len in [0usize, 1, 7, 8, 63, 64, 65, 127, 128, 200, 8191] {
            let values = adversarial_values(len, &mut seed);
            let nw = len.div_ceil(WORD_BITS);
            let mut scalar_words = vec![0u64; nw];
            pack_signs_scalar(&values, &mut scalar_words);
            #[cfg(target_arch = "x86_64")]
            if is_x86_feature_detected!("avx") {
                let mut simd_words = vec![u64::MAX; nw];
                // SAFETY: avx detected on this host.
                unsafe { pack_signs_avx(&values, &mut simd_words) };
                assert_eq!(simd_words, scalar_words, "avx mismatch at {len} floats");
            }
            let mut dispatched = vec![u64::MAX; nw];
            pack_signs(&values, &mut dispatched);
            assert_eq!(dispatched, scalar_words, "dispatch mismatch at {len}");
        }
    }

    #[test]
    fn sign_bit_pins_special_cases() {
        assert!(sign_bit(0.0));
        assert!(sign_bit(-0.0), "-0.0 binarizes to +1");
        assert!(sign_bit(f32::INFINITY));
        assert!(!sign_bit(f32::NAN), "NaN binarizes to -1");
        assert!(!sign_bit(-f32::NAN));
        assert!(!sign_bit(f32::NEG_INFINITY));
        assert!(!sign_bit(-f32::EPSILON));
        assert!(sign_bit(f32::MIN_POSITIVE));
    }
}
