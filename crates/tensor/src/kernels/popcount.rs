//! XNOR-popcount word kernels: scalar oracle, AVX2 Harley-Seal, AVX-512
//! VPOPCNTDQ.
//!
//! All three count `Σ popcount(!(a[w] ^ b[w]))` over whole `u64` words —
//! pure integer arithmetic, so every path is **bitwise equal
//! unconditionally**; runtime dispatch (see [`crate::kernels::dispatch`])
//! only changes speed. Tail-bit masking for lengths that are not a multiple
//! of 64 stays in `bits::xnor_popcount`, which slices its operands to whole
//! words before calling in here.

use super::dispatch::{popcount_kernel, PopcountKernel};

/// Counts matching bits of `a` vs `b` over whole words, dispatched to the
/// fastest kernel the host supports (forced-scalar override respected).
///
/// Extra words in the longer slice are ignored (`zip` semantics); callers
/// pass equal-length slices.
#[inline]
pub(crate) fn xnor_popcount_words(a: &[u64], b: &[u64]) -> u32 {
    match popcount_kernel() {
        PopcountKernel::Scalar => xnor_popcount_words_scalar(a, b),
        // SAFETY: `PopcountKernel::Avx2` is only ever selected by
        // `popcount_kernel()` after `is_x86_feature_detected!("avx2")`
        // confirmed the host executes AVX2 instructions.
        #[cfg(target_arch = "x86_64")]
        PopcountKernel::Avx2 => unsafe { xnor_popcount_words_avx2(a, b) },
        // SAFETY: `PopcountKernel::Avx512` is only selected after runtime
        // detection of both `avx512f` and `avx512vpopcntdq`.
        #[cfg(target_arch = "x86_64")]
        PopcountKernel::Avx512 => unsafe { xnor_popcount_words_avx512(a, b) },
        #[cfg(not(target_arch = "x86_64"))]
        _ => xnor_popcount_words_scalar(a, b),
    }
}

/// Rows interleaved per block in [`xnor_popcount_rows`]'s operand layout:
/// word `j` of four consecutive rows sits contiguously, so one 256-bit
/// load fetches the same word column of a whole row block.
pub(crate) const ROW_LANES: usize = 4;

/// Batched XNOR-popcount: counts matching bits of every interleaved row of
/// `blocks` against the single operand `x`, over whole words, with **one**
/// kernel dispatch for the entire matrix.
///
/// `blocks` holds `out.len()` rows of `words_per_row` words in
/// [`ROW_LANES`]-interleaved layout (`blocks[(block * words_per_row + j) *
/// ROW_LANES + lane]` is word `j` of row `block * ROW_LANES + lane`). This
/// is the primitive behind [`InterleavedRows`](crate::InterleavedRows):
/// per-row entry points pay the dispatch, bounds checks, and (for short
/// rows) the SIMD remainder handling once per row, which dominates
/// fused-executor replay where rows are a handful of words long.
///
/// # Panics
///
/// Panics unless `out.len()` is a multiple of [`ROW_LANES`], `blocks`
/// holds exactly `out.len() * words_per_row` words, and `x` holds at least
/// `words_per_row` words.
pub(crate) fn xnor_popcount_rows(blocks: &[u64], words_per_row: usize, x: &[u64], out: &mut [u32]) {
    assert!(
        out.len() % ROW_LANES == 0,
        "row count must be padded to a multiple of {ROW_LANES}"
    );
    assert_eq!(
        blocks.len(),
        out.len() * words_per_row,
        "interleaved operand size mismatch"
    );
    assert!(x.len() >= words_per_row, "x shorter than one row");
    match popcount_kernel() {
        PopcountKernel::Scalar => xnor_popcount_rows_scalar(blocks, words_per_row, x, out),
        // SAFETY: `Avx2` is only selected after runtime AVX2 detection;
        // every CPU the `Avx512` variant can be selected on (avx512f +
        // vpopcntdq) also executes AVX2.
        #[cfg(target_arch = "x86_64")]
        PopcountKernel::Avx2 | PopcountKernel::Avx512 => unsafe {
            xnor_popcount_rows_avx2(blocks, words_per_row, x, out)
        },
        #[cfg(not(target_arch = "x86_64"))]
        _ => xnor_popcount_rows_scalar(blocks, words_per_row, x, out),
    }
}

/// Scalar oracle for [`xnor_popcount_rows`] — walks the interleaved layout
/// a block column at a time; the SIMD paths must match it bit for bit.
fn xnor_popcount_rows_scalar(blocks: &[u64], words_per_row: usize, x: &[u64], out: &mut [u32]) {
    if words_per_row == 0 {
        out.fill(0);
        return;
    }
    let block_words = words_per_row * ROW_LANES;
    for (chunk, block) in out
        .chunks_exact_mut(ROW_LANES)
        .zip(blocks.chunks_exact(block_words))
    {
        let mut c = [0u32; ROW_LANES];
        for (col, &xw) in block.chunks_exact(ROW_LANES).zip(x) {
            for (acc, &w) in c.iter_mut().zip(col) {
                *acc += (!(w ^ xw)).count_ones();
            }
        }
        chunk.copy_from_slice(&c);
    }
}

/// AVX2 batched kernel: one vector per block column (four rows' word `j`),
/// `x[j]` broadcast across lanes, XNOR accumulated through a carry-save
/// `ones`/`twos` pair so the nibble-LUT byte popcount runs once per two
/// columns instead of once per column.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xnor_popcount_rows_avx2(
    blocks: &[u64],
    words_per_row: usize,
    x: &[u64],
    out: &mut [u32],
) {
    use std::arch::x86_64::*;

    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
        3, 4,
    );
    let low = _mm256_set1_epi8(0x0f);
    let ones = _mm256_set1_epi64x(-1);

    /// Sums the popcounts of the 32 bytes of `v` into four u64 lanes.
    ///
    /// # Safety
    ///
    /// Caller must be executing with AVX2 available (guaranteed here: only
    /// called from inside this `#[target_feature(enable = "avx2")]` body).
    #[inline(always)]
    unsafe fn pc_bytes(v: __m256i, lut: __m256i, low: __m256i) -> __m256i {
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low);
        let p = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(p, _mm256_setzero_si256())
    }

    let bp = blocks.as_ptr() as *const __m256i;
    let xp = x.as_ptr();
    for (b, chunk) in out.chunks_exact_mut(ROW_LANES).enumerate() {
        let base = b * words_per_row;
        let mut onesv = _mm256_setzero_si256();
        let mut twos = _mm256_setzero_si256();
        let mut j = 0usize;
        while j + 2 <= words_per_row {
            // XNOR of each column vector with its broadcast x word
            // (`xp.add(j)` stays in bounds: the dispatcher asserts
            // `x.len() >= words_per_row`).
            let v1 = _mm256_xor_si256(
                _mm256_xor_si256(
                    _mm256_loadu_si256(bp.add(base + j)),
                    _mm256_set1_epi64x(*xp.add(j) as i64),
                ),
                ones,
            );
            let v2 = _mm256_xor_si256(
                _mm256_xor_si256(
                    _mm256_loadu_si256(bp.add(base + j + 1)),
                    _mm256_set1_epi64x(*xp.add(j + 1) as i64),
                ),
                ones,
            );
            // Carry-save add: carries weigh 2, the running sum weighs 1.
            let u = _mm256_xor_si256(v1, v2);
            let carry = _mm256_or_si256(_mm256_and_si256(v1, v2), _mm256_and_si256(u, onesv));
            onesv = _mm256_xor_si256(u, onesv);
            twos = _mm256_add_epi64(twos, pc_bytes(carry, lut, low));
            j += 2;
        }
        if j < words_per_row {
            let v = _mm256_xor_si256(
                _mm256_xor_si256(
                    _mm256_loadu_si256(bp.add(base + j)),
                    _mm256_set1_epi64x(*xp.add(j) as i64),
                ),
                ones,
            );
            let carry = _mm256_and_si256(onesv, v);
            onesv = _mm256_xor_si256(onesv, v);
            twos = _mm256_add_epi64(twos, pc_bytes(carry, lut, low));
        }
        let total = _mm256_add_epi64(_mm256_slli_epi64::<1>(twos), pc_bytes(onesv, lut, low));
        let mut lanes = [0u64; ROW_LANES];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, total);
        for (o, &lane) in chunk.iter_mut().zip(&lanes) {
            *o = lane as u32;
        }
    }
}

/// The canonical scalar kernel — the parity oracle every SIMD path must
/// match bit for bit (`zip` keeps it panic-free on any slice lengths).
#[inline]
pub(crate) fn xnor_popcount_words_scalar(a: &[u64], b: &[u64]) -> u32 {
    let mut count = 0u32;
    for (x, y) in a.iter().zip(b) {
        count += (!(x ^ y)).count_ones();
    }
    count
}

/// AVX2 Harley-Seal popcount: carry-save adders compress 16 vectors per
/// block so the (comparatively expensive) nibble-LUT byte popcount runs
/// once per 1024 input bits instead of once per 256.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xnor_popcount_words_avx2(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::x86_64::*;

    let n = a.len().min(b.len());
    let ap = a.as_ptr() as *const __m256i;
    let bp = b.as_ptr() as *const __m256i;
    let nvec = n / 4;
    // Per-nibble popcount table, replicated across both 128-bit lanes.
    let lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3,
        3, 4,
    );
    let low = _mm256_set1_epi8(0x0f);
    let ones = _mm256_set1_epi64x(-1);

    /// Sums the popcounts of the 32 bytes of `v` into four u64 lanes.
    ///
    /// # Safety
    ///
    /// Caller must be executing with AVX2 available (guaranteed here: only
    /// called from inside this `#[target_feature(enable = "avx2")]` body).
    #[inline(always)]
    unsafe fn pc_bytes(v: __m256i, lut: __m256i, low: __m256i) -> __m256i {
        let lo = _mm256_and_si256(v, low);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low);
        let p = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(p, _mm256_setzero_si256())
    }

    /// Carry-save adder: returns (carry, sum) of three bit-vectors.
    ///
    /// # Safety
    ///
    /// Caller must be executing with AVX2 available (guaranteed here: only
    /// called from inside this `#[target_feature(enable = "avx2")]` body).
    #[inline(always)]
    unsafe fn csa(a: __m256i, b: __m256i, c: __m256i) -> (__m256i, __m256i) {
        let u = _mm256_xor_si256(a, b);
        (
            _mm256_or_si256(_mm256_and_si256(a, b), _mm256_and_si256(u, c)),
            _mm256_xor_si256(u, c),
        )
    }

    /// Loads vector `i` of each operand and forms their XNOR.
    ///
    /// # Safety
    ///
    /// `i` must be a valid vector index for both operands.
    #[inline(always)]
    unsafe fn ldx(ap: *const __m256i, bp: *const __m256i, i: usize, ones: __m256i) -> __m256i {
        _mm256_xor_si256(
            _mm256_xor_si256(_mm256_loadu_si256(ap.add(i)), _mm256_loadu_si256(bp.add(i))),
            ones,
        )
    }

    let mut total = _mm256_setzero_si256();
    let mut onesv = _mm256_setzero_si256();
    let mut twos = _mm256_setzero_si256();
    let mut fours = _mm256_setzero_si256();
    let mut eights = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 16 <= nvec {
        let (twos_a, o1) = csa(onesv, ldx(ap, bp, i, ones), ldx(ap, bp, i + 1, ones));
        let (twos_b, o2) = csa(o1, ldx(ap, bp, i + 2, ones), ldx(ap, bp, i + 3, ones));
        let (fours_a, t1) = csa(twos, twos_a, twos_b);
        let (twos_a, o3) = csa(o2, ldx(ap, bp, i + 4, ones), ldx(ap, bp, i + 5, ones));
        let (twos_b, o4) = csa(o3, ldx(ap, bp, i + 6, ones), ldx(ap, bp, i + 7, ones));
        let (fours_b, t2) = csa(t1, twos_a, twos_b);
        let (eights_a, f1) = csa(fours, fours_a, fours_b);
        let (twos_a, o5) = csa(o4, ldx(ap, bp, i + 8, ones), ldx(ap, bp, i + 9, ones));
        let (twos_b, o6) = csa(o5, ldx(ap, bp, i + 10, ones), ldx(ap, bp, i + 11, ones));
        let (fours_a, t3) = csa(t2, twos_a, twos_b);
        let (twos_a, o7) = csa(o6, ldx(ap, bp, i + 12, ones), ldx(ap, bp, i + 13, ones));
        let (twos_b, o8) = csa(o7, ldx(ap, bp, i + 14, ones), ldx(ap, bp, i + 15, ones));
        let (fours_b, t4) = csa(t3, twos_a, twos_b);
        let (eights_b, f2) = csa(f1, fours_a, fours_b);
        let (sixteens, e1) = csa(eights, eights_a, eights_b);
        onesv = o8;
        twos = t4;
        fours = f2;
        eights = e1;
        total = _mm256_add_epi64(total, pc_bytes(sixteens, lut, low));
        i += 16;
    }
    // Fold the partial carry-save counters back in with their weights.
    total = _mm256_slli_epi64::<4>(total);
    total = _mm256_add_epi64(total, _mm256_slli_epi64::<3>(pc_bytes(eights, lut, low)));
    total = _mm256_add_epi64(total, _mm256_slli_epi64::<2>(pc_bytes(fours, lut, low)));
    total = _mm256_add_epi64(total, _mm256_slli_epi64::<1>(pc_bytes(twos, lut, low)));
    total = _mm256_add_epi64(total, pc_bytes(onesv, lut, low));
    while i < nvec {
        total = _mm256_add_epi64(total, pc_bytes(ldx(ap, bp, i, ones), lut, low));
        i += 1;
    }
    let mut lanes = [0u64; 4];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, total);
    let mut count = lanes.iter().sum::<u64>() as u32;
    // Remaining 0–3 words fall through to the scalar oracle.
    let (_, a_tail) = a.split_at(nvec * 4);
    let (_, b_tail) = b.split_at(nvec * 4);
    count += xnor_popcount_words_scalar(a_tail, b_tail);
    count
}

/// AVX-512 popcount via the VPOPCNTDQ extension: one `vpopcntq` per eight
/// words, accumulated in 64-bit lanes.
///
/// # Safety
///
/// Caller must ensure the host supports AVX-512F and AVX-512 VPOPCNTDQ.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vpopcntdq")]
unsafe fn xnor_popcount_words_avx512(a: &[u64], b: &[u64]) -> u32 {
    use std::arch::x86_64::*;

    let n = a.len().min(b.len());
    let mut acc = _mm512_setzero_si512();
    let ones = _mm512_set1_epi64(-1);
    let mut i = 0usize;
    while i + 8 <= n {
        let va = _mm512_loadu_si512(a.as_ptr().add(i) as *const _);
        let vb = _mm512_loadu_si512(b.as_ptr().add(i) as *const _);
        let x = _mm512_xor_si512(_mm512_xor_si512(va, vb), ones);
        acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
        i += 8;
    }
    let mut count = _mm512_reduce_add_epi64(acc) as u32;
    // Remaining 0–7 words fall through to the scalar oracle.
    let (_, a_tail) = a.split_at(i);
    let (_, b_tail) = b.split_at(i);
    count += xnor_popcount_words_scalar(a_tail, b_tail);
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xorshift(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        *seed
    }

    #[test]
    fn simd_kernels_match_scalar_bitwise() {
        let mut seed = 0x243f_6a88_85a3_08d3u64;
        for words in [0usize, 1, 3, 4, 5, 15, 16, 17, 63, 64, 65, 128, 257] {
            let a: Vec<u64> = (0..words).map(|_| xorshift(&mut seed)).collect();
            let b: Vec<u64> = (0..words).map(|_| xorshift(&mut seed)).collect();
            let want = xnor_popcount_words_scalar(&a, &b);
            #[cfg(target_arch = "x86_64")]
            {
                if is_x86_feature_detected!("avx2") {
                    // SAFETY: avx2 detected on this host.
                    let got = unsafe { xnor_popcount_words_avx2(&a, &b) };
                    assert_eq!(got, want, "avx2 mismatch at {words} words");
                }
                if is_x86_feature_detected!("avx512f")
                    && is_x86_feature_detected!("avx512vpopcntdq")
                {
                    // SAFETY: avx512f + avx512vpopcntdq detected on this host.
                    let got = unsafe { xnor_popcount_words_avx512(&a, &b) };
                    assert_eq!(got, want, "avx512 mismatch at {words} words");
                }
            }
            // The dispatched entry point agrees with the oracle too,
            // whichever kernel it picked.
            assert_eq!(xnor_popcount_words(&a, &b), want);
        }
    }

    #[test]
    fn batched_rows_kernel_matches_per_row_oracle() {
        let mut seed = 0x1357_9bdf_2468_ace0u64;
        for words_per_row in [0usize, 1, 2, 3, 5, 7, 8, 13] {
            for blocks in [1usize, 2, 5] {
                let rows = blocks * ROW_LANES;
                let data: Vec<u64> = (0..rows * words_per_row)
                    .map(|_| xorshift(&mut seed))
                    .collect();
                let x: Vec<u64> = (0..words_per_row).map(|_| xorshift(&mut seed)).collect();
                // Deinterleave each row and popcount it with the scalar
                // word oracle.
                let row_words = |r: usize| -> Vec<u64> {
                    let (b, lane) = (r / ROW_LANES, r % ROW_LANES);
                    (0..words_per_row)
                        .map(|j| data[(b * words_per_row + j) * ROW_LANES + lane])
                        .collect()
                };
                let want: Vec<u32> = (0..rows)
                    .map(|r| xnor_popcount_words_scalar(&row_words(r), &x))
                    .collect();

                let mut got = vec![0u32; rows];
                xnor_popcount_rows_scalar(&data, words_per_row, &x, &mut got);
                assert_eq!(got, want, "scalar rows kernel, {words_per_row} words");

                #[cfg(target_arch = "x86_64")]
                if is_x86_feature_detected!("avx2") {
                    let mut got = vec![0u32; rows];
                    // SAFETY: avx2 detected on this host.
                    unsafe { xnor_popcount_rows_avx2(&data, words_per_row, &x, &mut got) };
                    assert_eq!(got, want, "avx2 rows kernel, {words_per_row} words");
                }

                let mut got = vec![0u32; rows];
                xnor_popcount_rows(&data, words_per_row, &x, &mut got);
                assert_eq!(got, want, "dispatched rows kernel, {words_per_row} words");
            }
        }
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let ones = vec![u64::MAX; 33];
        let zeros = vec![0u64; 33];
        assert_eq!(xnor_popcount_words(&ones, &ones), 33 * 64);
        assert_eq!(xnor_popcount_words(&ones, &zeros), 0);
        assert_eq!(xnor_popcount_words(&zeros, &zeros), 33 * 64);
    }
}
