//! Runtime CPU-feature detection and kernel selection.
//!
//! Every SIMD kernel in this crate is chosen **at runtime** from the
//! features the host actually reports (via `is_x86_feature_detected!`),
//! never from compile-time `cfg(target_feature)`. The repo deliberately
//! builds with `target-cpu=native` locally and `x86-64-v2` in CI, so any
//! compile-time feature branch silently forks the numerics between hosts —
//! exactly the bug this module exists to make unrepresentable (see
//! ARCHITECTURE.md § "Kernel dispatch": numeric results are host-invariant;
//! the instruction set only changes speed).
//!
//! The scalar kernels are the always-available fallback and the parity
//! oracle: [`set_forced_scalar`] (or the `RBNN_KERNELS=scalar` environment
//! variable, read once) forces every dispatched entry point onto them, and
//! the conformance gate requires bit-for-bit agreement between the two
//! modes.

use std::sync::atomic::{AtomicU8, Ordering};

/// CPU features relevant to this crate's kernels, as detected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// Baseline x86-64 SIMD (always true on x86_64).
    pub sse2: bool,
    /// 256-bit float ops (`vcmpps` + `vmovmskps` sign-packing).
    pub avx: bool,
    /// 256-bit integer ops (Harley-Seal popcount).
    pub avx2: bool,
    /// Fused multiply-add (`vfmadd231ps` GEMM micro-kernel).
    pub fma: bool,
    /// AVX-512 foundation (512-bit registers and masks).
    pub avx512f: bool,
    /// Hardware 64-bit lane popcount (`vpopcntq`).
    pub avx512_vpopcntdq: bool,
}

impl CpuFeatures {
    /// Names of the detected features, in a fixed order.
    pub fn names(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        for (on, name) in [
            (self.sse2, "sse2"),
            (self.avx, "avx"),
            (self.avx2, "avx2"),
            (self.fma, "fma"),
            (self.avx512f, "avx512f"),
            (self.avx512_vpopcntdq, "avx512vpopcntdq"),
        ] {
            if on {
                out.push(name);
            }
        }
        out
    }
}

/// Detects the host's kernel-relevant CPU features.
///
/// `is_x86_feature_detected!` caches its own CPUID results, so this is
/// cheap enough to call per kernel-selection.
pub fn host_features() -> CpuFeatures {
    #[cfg(target_arch = "x86_64")]
    {
        CpuFeatures {
            sse2: is_x86_feature_detected!("sse2"),
            avx: is_x86_feature_detected!("avx"),
            avx2: is_x86_feature_detected!("avx2"),
            fma: is_x86_feature_detected!("fma"),
            avx512f: is_x86_feature_detected!("avx512f"),
            avx512_vpopcntdq: is_x86_feature_detected!("avx512vpopcntdq"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        CpuFeatures {
            sse2: false,
            avx: false,
            avx2: false,
            fma: false,
            avx512f: false,
            avx512_vpopcntdq: false,
        }
    }
}

/// Process-global kernel-mode override: `0` = unset (defer to the
/// `RBNN_KERNELS` environment variable), `1` = auto dispatch, `2` = forced
/// scalar. Written by tests/benches, read on every kernel selection.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Cached `RBNN_KERNELS` environment mode: `0` = not yet read, `1` = auto,
/// `2` = scalar.
static ENV_MODE: AtomicU8 = AtomicU8::new(0);

const MODE_UNSET: u8 = 0;
const MODE_AUTO: u8 = 1;
const MODE_SCALAR: u8 = 2;

/// Forces (or un-forces) the scalar kernel path for the whole process.
///
/// A programmatic override always wins over the `RBNN_KERNELS` environment
/// variable; use [`clear_forced_scalar`] to return control to the
/// environment. Tests toggling this must serialize on a shared lock (the
/// kernels are pure, so a racing reader only ever sees one of two
/// bitwise-identical results, but timing measurements would interleave).
pub fn set_forced_scalar(forced: bool) {
    let mode = if forced { MODE_SCALAR } else { MODE_AUTO };
    // Relaxed: a standalone flag with no dependent shared state — every
    // kernel produces bitwise-identical results in either mode, so readers
    // need no ordering with respect to other memory.
    OVERRIDE.store(mode, Ordering::Relaxed);
}

/// Clears any programmatic override, restoring the `RBNN_KERNELS`
/// environment default.
pub fn clear_forced_scalar() {
    // Relaxed: see `set_forced_scalar` — no dependent state to order.
    OVERRIDE.store(MODE_UNSET, Ordering::Relaxed);
}

/// True when the process is pinned to the scalar kernels, either via
/// [`set_forced_scalar`] or `RBNN_KERNELS=scalar` in the environment.
pub fn forced_scalar() -> bool {
    // Relaxed: standalone flag, no dependent shared state (see
    // `set_forced_scalar`).
    match OVERRIDE.load(Ordering::Relaxed) {
        MODE_SCALAR => true,
        MODE_AUTO => false,
        _ => env_mode() == MODE_SCALAR,
    }
}

/// Reads (once) and caches the `RBNN_KERNELS` environment mode.
fn env_mode() -> u8 {
    // Relaxed: the cached value is write-once and self-contained; racing
    // initializers compute the same answer from the same environment.
    let cached = ENV_MODE.load(Ordering::Relaxed);
    if cached != MODE_UNSET {
        return cached;
    }
    let mode = match std::env::var("RBNN_KERNELS") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => MODE_SCALAR,
        _ => MODE_AUTO,
    };
    // Relaxed: see above — idempotent write of a value derived from the
    // (stable) process environment.
    ENV_MODE.store(mode, Ordering::Relaxed);
    mode
}

/// Which implementation backs the XNOR-popcount word kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopcountKernel {
    /// Portable `u64::count_ones` loop (the parity oracle).
    Scalar,
    /// AVX2 Harley-Seal carry-save adder with a nibble-LUT byte popcount.
    Avx2,
    /// AVX-512 `vpopcntq` (VPOPCNTDQ extension).
    Avx512,
}

/// Which implementation backs the float sign-packing kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackKernel {
    /// Portable branchless bit loop (the parity oracle).
    Scalar,
    /// AVX `vcmpps`/`vmovmskps`, 8 sign bits per instruction pair.
    Avx,
}

/// Which implementation backs the f32 GEMM micro-kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmKernel {
    /// Portable `f32::mul_add` loop (the parity oracle; correctly-rounded
    /// fused contraction even without hardware FMA).
    Scalar,
    /// AVX2+FMA `vfmadd231ps` register tile, same contraction order.
    Fma,
}

/// Selects the XNOR-popcount kernel for this host (and override state).
#[inline]
pub fn popcount_kernel() -> PopcountKernel {
    if forced_scalar() {
        return PopcountKernel::Scalar;
    }
    let f = host_features();
    if f.avx512f && f.avx512_vpopcntdq {
        PopcountKernel::Avx512
    } else if f.avx2 {
        PopcountKernel::Avx2
    } else {
        PopcountKernel::Scalar
    }
}

/// Selects the sign-packing kernel for this host (and override state).
#[inline]
pub fn pack_kernel() -> PackKernel {
    if forced_scalar() {
        return PackKernel::Scalar;
    }
    if host_features().avx {
        PackKernel::Avx
    } else {
        PackKernel::Scalar
    }
}

/// Selects the GEMM micro-kernel for this host (and override state).
#[inline]
pub fn gemm_kernel() -> GemmKernel {
    if forced_scalar() {
        return GemmKernel::Scalar;
    }
    let f = host_features();
    if f.avx2 && f.fma {
        GemmKernel::Fma
    } else {
        GemmKernel::Scalar
    }
}

/// A snapshot of the dispatch decisions, for bench envelopes and CI
/// self-checks — cross-host artifact diffs must be explainable from the
/// recorded feature set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchReport {
    /// Detected host features (names, fixed order).
    pub features: Vec<&'static str>,
    /// True when the scalar override (programmatic or `RBNN_KERNELS`) is on.
    pub forced_scalar: bool,
    /// Selected popcount kernel name.
    pub popcount: &'static str,
    /// Selected sign-packing kernel name.
    pub pack: &'static str,
    /// Selected GEMM micro-kernel name.
    pub gemm: &'static str,
}

impl DispatchReport {
    /// Comma-separated feature list (for flat text/JSON fields).
    pub fn features_csv(&self) -> String {
        self.features.join(",")
    }
}

/// Captures the current dispatch decisions.
pub fn dispatch_report() -> DispatchReport {
    DispatchReport {
        features: host_features().names(),
        forced_scalar: forced_scalar(),
        popcount: match popcount_kernel() {
            PopcountKernel::Scalar => "scalar",
            PopcountKernel::Avx2 => "avx2-harley-seal",
            PopcountKernel::Avx512 => "avx512-vpopcntdq",
        },
        pack: match pack_kernel() {
            PackKernel::Scalar => "scalar",
            PackKernel::Avx => "avx-movemask",
        },
        gemm: match gemm_kernel() {
            GemmKernel::Scalar => "scalar-fma",
            GemmKernel::Fma => "avx2-fma",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x86_64_reports_at_least_sse2() {
        // The CI self-check in workflow terms: every x86-64 host must
        // report the baseline feature, whatever else it has.
        #[cfg(target_arch = "x86_64")]
        assert!(host_features().sse2, "x86_64 host must report sse2");
        let report = dispatch_report();
        #[cfg(target_arch = "x86_64")]
        assert!(report.features_csv().contains("sse2"));
        // Kernel names are always drawn from the documented set.
        assert!(["scalar", "avx2-harley-seal", "avx512-vpopcntdq"].contains(&report.popcount));
        assert!(["scalar", "avx-movemask"].contains(&report.pack));
        assert!(["scalar-fma", "avx2-fma"].contains(&report.gemm));
    }

    #[test]
    fn forced_scalar_override_wins() {
        let _guard = crate::gemm::TEST_GLOBALS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_forced_scalar(true);
        assert!(forced_scalar());
        assert_eq!(popcount_kernel(), PopcountKernel::Scalar);
        assert_eq!(pack_kernel(), PackKernel::Scalar);
        assert_eq!(gemm_kernel(), GemmKernel::Scalar);
        let report = dispatch_report();
        assert!(report.forced_scalar);
        assert_eq!(report.popcount, "scalar");
        set_forced_scalar(false);
        assert!(!forced_scalar());
        clear_forced_scalar();
    }
}
