//! Matrix multiplication entry points on [`Tensor`].
//!
//! Convolution in `rbnn-nn` is lowered to matrix multiplication through
//! `im2col`, so these methods are the hot path of the whole training stack.
//! All three transpose variants route into the packed register-tiled kernel
//! in [`crate::gemm`]; the `_into` variants write into a caller-provided
//! tensor so steady-state training allocates nothing per batch.

use crate::gemm::{self, Layout};
use crate::Tensor;

impl Tensor {
    /// Matrix product `self × rhs` for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    ///
    /// ```
    /// use rbnn_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]);
    /// assert_eq!(a.matmul(&b).as_slice(), &[19., 22., 43., 50.]);
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`matmul`](Self::matmul) writing into `out` (resized in place,
    /// reusing its allocation; prior contents are overwritten).
    pub fn matmul_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape().ndim(), 2, "matmul: lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul: rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul: inner dimensions {k} and {k2} disagree");
        out.resize_for_overwrite([m, n]); // the kernels fully overwrite `out`
        if gemm::reference_kernels_enabled() {
            gemm::reference::matmul(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        } else {
            gemm::gemm(
                self.as_slice(),
                Layout::RowMajor,
                rhs.as_slice(),
                Layout::RowMajor,
                m,
                k,
                n,
                out.as_mut_slice(),
            );
        }
    }

    /// Matrix product `selfᵀ × rhs` without materializing the transpose.
    ///
    /// `self` is `[k, m]`, `rhs` is `[k, n]`, the result is `[m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the leading dimensions disagree.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_tn_into(rhs, &mut out);
        out
    }

    /// [`matmul_tn`](Self::matmul_tn) writing into `out` (resized in place,
    /// reusing its allocation; prior contents are overwritten).
    pub fn matmul_tn_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape().ndim(), 2, "matmul_tn: lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul_tn: rhs must be 2-D");
        let (k, m) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul_tn: leading dimensions {k} and {k2} disagree");
        out.resize_for_overwrite([m, n]); // the kernels fully overwrite `out`
        if gemm::reference_kernels_enabled() {
            gemm::reference::matmul_tn(
                self.as_slice(),
                rhs.as_slice(),
                out.as_mut_slice(),
                k,
                m,
                n,
            );
        } else {
            gemm::gemm(
                self.as_slice(),
                Layout::Transposed,
                rhs.as_slice(),
                Layout::RowMajor,
                m,
                k,
                n,
                out.as_mut_slice(),
            );
        }
    }

    /// Matrix product `self × rhsᵀ` without materializing the transpose.
    ///
    /// `self` is `[m, k]`, `rhs` is `[n, k]`, the result is `[m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the trailing dimensions
    /// disagree.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`matmul_nt`](Self::matmul_nt) writing into `out` (resized in place,
    /// reusing its allocation; prior contents are overwritten).
    pub fn matmul_nt_into(&self, rhs: &Tensor, out: &mut Tensor) {
        assert_eq!(self.shape().ndim(), 2, "matmul_nt: lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul_nt: rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(
            k, k2,
            "matmul_nt: trailing dimensions {k} and {k2} disagree"
        );
        out.resize_for_overwrite([m, n]); // the kernels fully overwrite `out`
        if gemm::reference_kernels_enabled() {
            gemm::reference::matmul_nt(
                self.as_slice(),
                rhs.as_slice(),
                out.as_mut_slice(),
                m,
                k,
                n,
            );
        } else {
            gemm::gemm(
                self.as_slice(),
                Layout::RowMajor,
                rhs.as_slice(),
                Layout::Transposed,
                m,
                k,
                n,
                out.as_mut_slice(),
            );
        }
    }

    /// Matrix–vector product `self × v` for a 2-D tensor and 1-D vector.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matvec: lhs must be 2-D");
        assert_eq!(v.shape().ndim(), 1, "matvec: rhs must be 1-D");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(k, v.dim(0), "matvec: dimension mismatch");
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = Tensor::zeros([m]);
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&p, &q)| p * q).sum();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    /// Non-block-multiple shapes: unit, tall/skinny, fat/short, and sizes
    /// straddling the register tile and cache blocks.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 9, 1),
        (3, 5, 7),
        (17, 33, 9),
        (70, 65, 130),
        (257, 3, 2),
        (2, 3, 257),
        (5, 300, 18),
    ];

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, k, n) in SHAPES {
            let a = Tensor::randn([m, k], 1.0, &mut rng);
            let b = Tensor::randn([k, n], 1.0, &mut rng);
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            assert!(fast.allclose(&slow, 1e-3), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        for &(m, k, n) in SHAPES {
            let a = Tensor::randn([k, m], 1.0, &mut rng);
            let b = Tensor::randn([k, n], 1.0, &mut rng);
            let expect = naive_matmul(&a.transpose(), &b);
            let got = a.matmul_tn(&b);
            assert!(got.allclose(&expect, 1e-3), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(6);
        for &(m, k, n) in SHAPES {
            let a = Tensor::randn([m, k], 1.0, &mut rng);
            let b = Tensor::randn([n, k], 1.0, &mut rng);
            let expect = naive_matmul(&a, &b.transpose());
            let got = a.matmul_nt(&b);
            assert!(got.allclose(&expect, 1e-3), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn into_variants_reuse_allocation_and_match() {
        // Exact-equality comparisons between kernel invocations: keep the
        // reference-mode toggle test from racing the routing global.
        let _guard = crate::gemm::TEST_GLOBALS_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn([13, 37], 1.0, &mut rng);
        let b = Tensor::randn([37, 11], 1.0, &mut rng);
        // Seed `out` with a larger stale buffer to prove reuse + overwrite.
        let mut out = Tensor::full([40, 40], 7.0);
        let cap_before = out.numel();
        a.matmul_into(&b, &mut out);
        assert!(out.numel() <= cap_before);
        assert!(out.allclose(&a.matmul(&b), 0.0));
        a.transpose().matmul_tn_into(&b, &mut out);
        assert!(out.allclose(&a.transpose().matmul_tn(&b), 0.0));
        a.matmul_nt_into(&b.transpose(), &mut out);
        assert!(out.allclose(&a.matmul_nt(&b.transpose()), 0.0));
    }

    #[test]
    fn parallel_matmul_is_thread_count_invariant() {
        // The kernel splits row panels across workers but fixes the
        // accumulation order per element, so results must be bitwise equal
        // for every worker count. The override only changes scheduling for
        // any concurrently running test, never results — but the
        // reference-mode toggle would change routing, so serialize.
        let _guard = crate::gemm::TEST_GLOBALS_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn([37, 129], 1.0, &mut rng);
        let b = Tensor::randn([129, 61], 1.0, &mut rng);
        let mut results = Vec::new();
        for threads in [1, 2, 5] {
            crate::par::set_thread_override(Some(threads));
            results.push((a.matmul(&b), a.matmul_tn(&a), b.matmul_nt(&b)));
        }
        crate::par::set_thread_override(None);
        for (x, y, z) in &results[1..] {
            assert_eq!(x.as_slice(), results[0].0.as_slice(), "matmul varies");
            assert_eq!(y.as_slice(), results[0].1.as_slice(), "matmul_tn varies");
            assert_eq!(z.as_slice(), results[0].2.as_slice(), "matmul_nt varies");
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::randn([9, 14], 1.0, &mut rng);
        let v = Tensor::randn([14], 1.0, &mut rng);
        let expect = a.matmul(&v.reshape([14, 1])).reshape([9]);
        assert!(a.matvec(&v).allclose(&expect, 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::randn([6, 6], 1.0, &mut rng);
        assert!(a.matmul(&Tensor::eye(6)).allclose(&a, 1e-6));
        assert!(Tensor::eye(6).matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }
}
