//! Blocked matrix multiplication kernels.
//!
//! Convolution in `rbnn-nn` is lowered to matrix multiplication through
//! `im2col`, so these kernels are the hot path of the whole training stack.
//! They use a simple cache-blocked `ikj` loop order with a parallel split
//! over output rows — no unsafe, no SIMD intrinsics; the inner loop is
//! written so the auto-vectorizer picks it up.

use crate::{par, Tensor};

const BLOCK: usize = 64;

impl Tensor {
    /// Matrix product `self × rhs` for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions disagree.
    ///
    /// ```
    /// use rbnn_tensor::Tensor;
    /// let a = Tensor::from_vec(vec![1., 2., 3., 4.], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5., 6., 7., 8.], &[2, 2]);
    /// assert_eq!(a.matmul(&b).as_slice(), &[19., 22., 43., 50.]);
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul: lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul: rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul: inner dimensions {k} and {k2} disagree");

        let mut out = Tensor::zeros([m, n]);
        matmul_into(self.as_slice(), rhs.as_slice(), out.as_mut_slice(), m, k, n);
        out
    }

    /// Matrix product `selfᵀ × rhs` without materializing the transpose.
    ///
    /// `self` is `[k, m]`, `rhs` is `[k, n]`, the result is `[m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the leading dimensions disagree.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul_tn: lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul_tn: rhs must be 2-D");
        let (k, m) = (self.dim(0), self.dim(1));
        let (k2, n) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(k, k2, "matmul_tn: leading dimensions {k} and {k2} disagree");

        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = Tensor::zeros([m, n]);
        let o = out.as_mut_slice();
        // out[i, j] = Σ_p a[p, i] * b[p, j]  — accumulate row-by-row of a/b so
        // both operands stream contiguously.
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut o[i * n..(i + 1) * n];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
        out
    }

    /// Matrix product `self × rhsᵀ` without materializing the transpose.
    ///
    /// `self` is `[m, k]`, `rhs` is `[n, k]`, the result is `[m, n]`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the trailing dimensions
    /// disagree.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matmul_nt: lhs must be 2-D");
        assert_eq!(rhs.shape().ndim(), 2, "matmul_nt: rhs must be 2-D");
        let (m, k) = (self.dim(0), self.dim(1));
        let (n, k2) = (rhs.dim(0), rhs.dim(1));
        assert_eq!(
            k, k2,
            "matmul_nt: trailing dimensions {k} and {k2} disagree"
        );

        let a = self.as_slice();
        let b = rhs.as_slice();
        let mut out = Tensor::zeros([m, n]);
        let o = out.as_mut_slice();
        par::par_for(m, |i| {
            // Rows are disjoint; reconstruct a mutable view per worker.
            let orow =
                unsafe { std::slice::from_raw_parts_mut(o.as_ptr().add(i * n) as *mut f32, n) };
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                orow[j] = acc;
            }
        });
        out
    }

    /// Matrix–vector product `self × v` for a 2-D tensor and 1-D vector.
    ///
    /// # Panics
    ///
    /// Panics on rank or dimension mismatch.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.shape().ndim(), 2, "matvec: lhs must be 2-D");
        assert_eq!(v.shape().ndim(), 1, "matvec: rhs must be 1-D");
        let (m, k) = (self.dim(0), self.dim(1));
        assert_eq!(k, v.dim(0), "matvec: dimension mismatch");
        let a = self.as_slice();
        let x = v.as_slice();
        let mut out = Tensor::zeros([m]);
        for (i, o) in out.as_mut_slice().iter_mut().enumerate() {
            let row = &a[i * k..(i + 1) * k];
            *o = row.iter().zip(x).map(|(&p, &q)| p * q).sum();
        }
        out
    }
}

/// Writes `A(m×k) × B(k×n)` into `out` (which must be zeroed, length `m·n`).
///
/// Exposed at crate level so the benchmark suite can time the raw kernel.
pub(crate) fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);

    let out_ptr = SendPtr(out.as_mut_ptr());
    // Parallel over blocks of output rows; each worker owns disjoint rows.
    let row_blocks = m.div_ceil(BLOCK);
    par::par_for(row_blocks, |bi| {
        let i0 = bi * BLOCK;
        let i1 = (i0 + BLOCK).min(m);
        let out_ptr = &out_ptr;
        for p0 in (0..k).step_by(BLOCK) {
            let p1 = (p0 + BLOCK).min(k);
            for i in i0..i1 {
                let orow = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(i * n), n) };
                for p in p0..p1 {
                    let av = a[i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (ov, &bv) in orow.iter_mut().zip(brow) {
                        *ov += av * bv;
                    }
                }
            }
        }
    });
}

/// Raw pointer wrapper that asserts cross-thread transferability; the caller
/// guarantees workers touch disjoint rows.
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *out.at_mut(&[i, j]) = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (17, 33, 9), (70, 65, 130)] {
            let a = Tensor::randn([m, k], 1.0, &mut rng);
            let b = Tensor::randn([k, n], 1.0, &mut rng);
            let fast = a.matmul(&b);
            let slow = naive_matmul(&a, &b);
            assert!(fast.allclose(&slow, 1e-3), "mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn([13, 7], 1.0, &mut rng);
        let b = Tensor::randn([13, 11], 1.0, &mut rng);
        let expect = a.transpose().matmul(&b);
        let got = a.matmul_tn(&b);
        assert!(got.allclose(&expect, 1e-3));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::randn([13, 7], 1.0, &mut rng);
        let b = Tensor::randn([11, 7], 1.0, &mut rng);
        let expect = a.matmul(&b.transpose());
        let got = a.matmul_nt(&b);
        assert!(got.allclose(&expect, 1e-3));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::randn([9, 14], 1.0, &mut rng);
        let v = Tensor::randn([14], 1.0, &mut rng);
        let expect = a.matmul(&v.reshape([14, 1])).reshape([9]);
        assert!(a.matvec(&v).allclose(&expect, 1e-4));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::randn([6, 6], 1.0, &mut rng);
        assert!(a.matmul(&Tensor::eye(6)).allclose(&a, 1e-6));
        assert!(Tensor::eye(6).matmul(&a).allclose(&a, 1e-6));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([4, 2]);
        let _ = a.matmul(&b);
    }
}
