//! Minimal scoped-thread parallelism helpers.
//!
//! The training loops in `rbnn-nn` are embarrassingly parallel over the batch
//! dimension; this module provides just enough machinery to exploit that with
//! `std::thread::scope`, without introducing a global thread-pool or
//! work-stealing runtime.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide worker-count override (`None` restores the default).
///
/// Takes precedence over `RBNN_THREADS`. Every parallel kernel in this
/// workspace is thread-count *invariant* (bitwise-identical results for any
/// worker count), so this knob only trades wall-clock for core usage; the
/// thread-invariance tests use it to sweep counts without mutating the
/// process environment (`set_var` is not thread-safe under a concurrent
/// test harness).
pub fn set_thread_override(threads: Option<usize>) {
    // SeqCst: test-facing global toggle, set between sweeps and never on a
    // hot path — strongest ordering so the new count is immediately visible
    // to every thread without reasoning about weaker fences.
    THREAD_OVERRIDE.store(threads.map_or(0, |n| n.max(1)), Ordering::SeqCst);
}

/// Returns the number of worker threads to use for data-parallel sections.
///
/// Defaults to the number of available CPUs, clamped to at least 1. Can be
/// overridden with [`set_thread_override`] or (e.g. for deterministic
/// single-thread debugging) the `RBNN_THREADS` environment variable.
pub fn num_threads() -> usize {
    // SeqCst: pairs with the store in `set_thread_override`; read once per
    // parallel section, so the fence cost is noise.
    let over = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if over > 0 {
        return over;
    }
    if let Ok(v) = std::env::var("RBNN_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f(i)` for every `i in 0..n`, distributing iterations across threads.
///
/// Iterations are claimed dynamically from an atomic counter, so uneven
/// per-item cost still balances. Falls back to a plain loop when `n < 2` or
/// only one thread is configured. `f` must be `Sync` because it is shared by
/// every worker.
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let hits = AtomicUsize::new(0);
/// rbnn_tensor::par::par_for(100, |_i| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let workers = num_threads().min(n.max(1));
    if workers <= 1 || n < 2 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Relaxed: the counter only hands out unique indices; the
                // scope join publishes every worker's effects.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Maps `f` over `0..n` in parallel, preserving order of results.
///
/// ```
/// let squares = rbnn_tensor::par::par_map(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send + Default,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<T> = (0..n).map(|_| T::default()).collect();
    {
        let slots: Vec<std::sync::Mutex<&mut T>> =
            out.iter_mut().map(std::sync::Mutex::new).collect();
        par_for(n, |i| {
            let mut slot = slots[i].lock().expect("poisoned par_map slot");
            **slot = f(i);
        });
    }
    out
}

/// Maps `f` over the elements of `items` in parallel, handing each worker
/// exclusive `&mut` access to the elements it claims, and preserving result
/// order. At most `threads` workers are spawned (`0` means
/// [`num_threads()`]); the effective count is also capped by
/// `RBNN_THREADS` / available parallelism via [`num_threads()`].
///
/// This is the fan-out primitive for tiled engines whose tiles own mutable
/// state (e.g. per-tile RNG streams): each element is claimed by exactly
/// one worker, so the per-element mutable state never crosses threads
/// mid-run.
///
/// ```
/// let mut counters = vec![0u64; 9];
/// let doubled = rbnn_tensor::par::par_map_mut(&mut counters, 0, |i, c| {
///     *c += i as u64;
///     *c * 2
/// });
/// assert_eq!(counters[3], 3);
/// assert_eq!(doubled[3], 6);
/// ```
pub fn par_map_mut<T, U, F>(items: &mut [T], threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send + Default,
    F: Fn(usize, &mut T) -> U + Sync,
{
    let n = items.len();
    let cap = if threads == 0 { usize::MAX } else { threads };
    let workers = num_threads().min(cap).min(n.max(1));
    if workers <= 1 || n < 2 {
        return items
            .iter_mut()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let mut out: Vec<U> = (0..n).map(|_| U::default()).collect();
    {
        let slots: Vec<std::sync::Mutex<(&mut T, &mut U)>> = items
            .iter_mut()
            .zip(out.iter_mut())
            .map(std::sync::Mutex::new)
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Relaxed: unique-claim counter; the per-slot mutex and
                    // the scope join order the actual element accesses.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut slot = slots[i].lock().expect("poisoned par_map_mut slot");
                    let (item, result) = &mut *slot;
                    **result = f(i, item);
                });
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn par_for_covers_every_index_once() {
        let n = 1000;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        par_for(n, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_handles_zero_and_one() {
        par_for(0, |_| panic!("must not run"));
        let hit = AtomicUsize::new(0);
        par_for(1, |_| {
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn par_map_preserves_order() {
        let v = par_map(257, |i| i as i64 * 3);
        assert_eq!(v.len(), 257);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as i64 * 3);
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn par_map_mut_mutates_every_element_once_and_preserves_order() {
        let mut items: Vec<u64> = (0..123).map(|i| i as u64).collect();
        let results = par_map_mut(&mut items, 0, |i, item| {
            *item += 1000;
            (i as u64, *item)
        });
        for (i, (idx, val)) in results.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*val, i as u64 + 1000);
            assert_eq!(items[i], i as u64 + 1000);
        }
    }

    #[test]
    fn par_map_mut_thread_cap_and_edge_sizes() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(par_map_mut(&mut empty, 4, |_, _| 0u32).is_empty());
        let mut one = vec![7u32];
        assert_eq!(par_map_mut(&mut one, 1, |_, x| *x * 2), vec![14]);
        let mut many: Vec<u32> = (0..50).collect();
        let got = par_map_mut(&mut many, 2, |_, x| *x + 1);
        assert_eq!(got, (1..51).collect::<Vec<u32>>());
    }
}
