//! Register-tiled, cache-blocked GEMM micro-kernels.
//!
//! This is the floating-point hot path of the whole training stack: every
//! dense layer and every `im2col`-lowered convolution executes here, three
//! times per batch (forward, weight gradient, input gradient). The kernel
//! follows the classic packed-GEMM structure:
//!
//! * both operands are **packed** into cache-blocked panels — an `MR`-row
//!   column-major A panel and `NR`-column row-major B tiles — so the micro
//!   kernel reads both streams contiguously regardless of whether the caller
//!   asked for `A·B`, `Aᵀ·B` or `A·Bᵀ`;
//! * the **micro kernel** keeps an `MR × NR` accumulator tile in registers
//!   and walks the shared dimension once. The contraction order is
//!   canonical and host-invariant: every output lane is one fused
//!   multiply-add chain in fixed k-order (see `microkernel_scalar`), and
//!   the AVX2+FMA variant is selected **at runtime** via
//!   [`crate::kernels::dispatch`] — never by compile-time
//!   `cfg(target_feature)`, which silently forked the numerics between the
//!   local `target-cpu=native` build and the CI `x86-64-v2` build;
//! * work is **split over row panels** across scoped worker threads (one
//!   tight closure-free path when a single worker is configured). Each
//!   output element is produced by exactly one worker accumulating in a
//!   fixed k-order, so results are bitwise identical for every thread
//!   count.
//!
//! The pre-overhaul loops are preserved in [`reference`](mod@reference) and can be selected
//! at runtime with [`set_reference_kernels`]; `train_bench` uses that to
//! measure honest before/after speedups and the test-suite uses the naive
//! triple loop as the parity oracle.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::kernels::dispatch::{gemm_kernel, GemmKernel};
use crate::par;

/// Rows of the register accumulator tile (4×16 measured fastest on this
/// repo's reference container; 8×16 spills registers, 8×8 gains nothing).
pub const MR: usize = 4;
/// Columns of the register accumulator tile (two 8-lane SIMD vectors).
pub const NR: usize = 16;
/// Cache block along the output columns: B is packed one `NC`-column
/// stripe at a time (`k × NC` f32, ~1 MiB at the workspace's largest `k`),
/// and every row panel streams over the stripe from L2/L3.
const NC: usize = 256;

static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Serializes tests that toggle process-global kernel state
/// ([`set_reference_kernels`], [`crate::set_forced_scalar`]) against tests
/// whose assertions would observe the toggle (bitwise comparisons between
/// two kernel invocations, timing measurements).
#[cfg(test)]
pub(crate) static TEST_GLOBALS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Routes `matmul` / `matmul_tn` / `matmul_nt` through the pre-overhaul
/// loops instead of the packed micro-kernels.
///
/// This exists for honest benchmarking (`train_bench` measures its baseline
/// with the reference kernels) and for debugging numerical differences; it
/// is process-global and not meant for production use.
pub fn set_reference_kernels(on: bool) {
    // SeqCst: test/bench-only global toggle, far off the hot path — the
    // strongest ordering makes the switch immediately visible to every
    // thread of a sweep without reasoning about weaker fences.
    REFERENCE_MODE.store(on, Ordering::SeqCst);
}

/// True when [`set_reference_kernels`] routed the kernels to the
/// pre-overhaul loops.
pub fn reference_kernels_enabled() -> bool {
    // SeqCst: pairs with the store in `set_reference_kernels`; checked once
    // per GEMM call, so the fence cost is irrelevant.
    REFERENCE_MODE.load(Ordering::SeqCst)
}

/// How an operand matrix is laid out relative to the logical GEMM operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// The buffer stores the logical operand row-major as-is.
    RowMajor,
    /// The buffer stores the *transpose* of the logical operand row-major
    /// (i.e. the logical operand is read column-major).
    Transposed,
}

thread_local! {
    // Packing buffers, reused across calls on the same thread. Workers
    // spawned by `par_for` get their own A-panel buffer; the B block is
    // packed once by the calling thread and shared read-only.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Packs the full-`k` `NC`-column stripe of B starting at column `j0` into
/// `NR`-column tiles: tile `jt` holds `k` rows of `NR` contiguous values,
/// zero-padded past the true column count.
fn pack_b_stripe(
    b: &[f32],
    layout: Layout,
    k: usize,
    n: usize,
    j0: usize,
    nc: usize,
    bp: &mut Vec<f32>,
) {
    let tiles = nc.div_ceil(NR);
    bp.clear();
    bp.resize(tiles * k * NR, 0.0);
    for jt in 0..tiles {
        let jbase = j0 + jt * NR;
        let jlim = NR.min(j0 + nc - jbase);
        let tile = &mut bp[jt * k * NR..(jt + 1) * k * NR];
        match layout {
            Layout::RowMajor => {
                for p in 0..k {
                    let src = &b[p * n + jbase..p * n + jbase + jlim];
                    tile[p * NR..p * NR + jlim].copy_from_slice(src);
                }
            }
            Layout::Transposed => {
                // b stores Bᵀ ([n, k] row-major): column j of B is row j of
                // b. Walk p outermost so stores are contiguous and the jlim
                // strided reads run as independent prefetch streams.
                for (p, trow) in tile.chunks_exact_mut(NR).enumerate() {
                    for (jr, t) in trow[..jlim].iter_mut().enumerate() {
                        *t = b[(jbase + jr) * k + p];
                    }
                }
            }
        }
    }
}

/// Packs the full-`k` `mr`-row panel of A starting at row `i0` column-major
/// (`ap[p * MR + r]`), zero-padded to `MR` rows.
fn pack_a_panel(
    a: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    i0: usize,
    mr: usize,
    ap: &mut Vec<f32>,
) {
    ap.clear();
    ap.resize(k * MR, 0.0);
    match layout {
        Layout::RowMajor => {
            // p outermost: contiguous stores, `mr` strided read streams.
            for (p, arow) in ap.chunks_exact_mut(MR).enumerate() {
                for (r, dst) in arow[..mr].iter_mut().enumerate() {
                    *dst = a[(i0 + r) * k + p];
                }
            }
        }
        Layout::Transposed => {
            // a stores Aᵀ ([k, m] row-major): walk k rows, gather mr values.
            for p in 0..k {
                let src = &a[p * m + i0..p * m + i0 + mr];
                ap[p * MR..p * MR + mr].copy_from_slice(src);
            }
        }
    }
}

/// Dispatches the register-tile micro kernel selected once per [`gemm`]
/// call: accumulates the packed `kc`-long panels into an `MR × NR` tile.
#[inline]
fn microkernel(kern: GemmKernel, ap: &[f32], btile: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    match kern {
        // SAFETY: `GemmKernel::Fma` is only ever constructed by
        // `dispatch::gemm_kernel()` after `is_x86_feature_detected!`
        // confirmed the host executes AVX2 and FMA instructions.
        #[cfg(target_arch = "x86_64")]
        GemmKernel::Fma => unsafe { microkernel_fma(ap, btile, kc, acc) },
        _ => microkernel_scalar(ap, btile, kc, acc),
    }
}

/// The canonical scalar micro kernel and the definition of this crate's
/// **contraction order**: each accumulator lane `acc[r][j]` is one fused
/// multiply-add chain `acc = fma(a[p·MR+r], b[p·NR+j], acc)` walked in
/// ascending `p`. `f32::mul_add` is correctly rounded on every target —
/// hardware `vfmadd` where the build enables it, libm `fmaf` otherwise —
/// so this kernel produces bit-identical results on every host, and the
/// SIMD variant below reproduces the same chains lane-for-lane. (The old
/// `cfg(target_feature = "fma")` mul-vs-fuse branch picked *different
/// numerics* per build target; runtime dispatch may only change speed.)
///
/// Constant bounds + `chunks_exact` keep the inner loops free of bounds
/// checks so they vectorize on builds whose baseline includes FMA.
#[inline]
fn microkernel_scalar(ap: &[f32], btile: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    for (arow, brow) in ap[..kc * MR]
        .chunks_exact(MR)
        .zip(btile[..kc * NR].chunks_exact(NR))
    {
        for r in 0..MR {
            let av = arow[r];
            let accr = &mut acc[r];
            for j in 0..NR {
                accr[j] = av.mul_add(brow[j], accr[j]);
            }
        }
    }
}

/// AVX2+FMA micro kernel: the 4×16 accumulator tile lives in eight `__m256`
/// registers and every k-step issues one `vfmadd231ps` per row half — the
/// same per-lane fused chains, in the same k-order, as
/// [`microkernel_scalar`], so the two are bitwise interchangeable.
///
/// # Safety
///
/// Caller must ensure the host supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_fma(ap: &[f32], btile: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;

    debug_assert!(ap.len() >= kc * MR && btile.len() >= kc * NR);
    let mut vacc = [[_mm256_setzero_ps(); 2]; MR];
    for (v, row) in vacc.iter_mut().zip(acc.iter()) {
        v[0] = _mm256_loadu_ps(row.as_ptr());
        v[1] = _mm256_loadu_ps(row.as_ptr().add(8));
    }
    let mut a = ap.as_ptr();
    let mut b = btile.as_ptr();
    for _ in 0..kc {
        let b0 = _mm256_loadu_ps(b);
        let b1 = _mm256_loadu_ps(b.add(8));
        for (r, v) in vacc.iter_mut().enumerate() {
            let av = _mm256_broadcast_ss(&*a.add(r));
            v[0] = _mm256_fmadd_ps(av, b0, v[0]);
            v[1] = _mm256_fmadd_ps(av, b1, v[1]);
        }
        a = a.add(MR);
        b = b.add(NR);
    }
    for (v, row) in vacc.iter().zip(acc.iter_mut()) {
        _mm256_storeu_ps(row.as_mut_ptr(), v[0]);
        _mm256_storeu_ps(row.as_mut_ptr().add(8), v[1]);
    }
}

/// Computes `C = op_a(A) × op_b(B)` for `[m, k] × [k, n]` logical operands,
/// overwriting `out` (`m·n` elements, any prior contents).
///
/// Parallelism splits output **row panels** only; the k-accumulation order
/// per element is fixed, so results are invariant to the worker count.
///
/// # Panics
///
/// Panics if a buffer length disagrees with the stated dimensions.
pub fn gemm(
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k, "gemm: A buffer/shape mismatch");
    assert_eq!(b.len(), k * n, "gemm: B buffer/shape mismatch");
    assert_eq!(out.len(), m * n, "gemm: C buffer/shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        out.fill(0.0);
        return;
    }
    // Resolved once per call: the same kernel runs for every panel and
    // every worker, so a concurrent override flip cannot mix kernels
    // within one GEMM (not that it would matter — they are bitwise equal).
    let kern = gemm_kernel();

    let row_panels = m.div_ceil(MR);
    let workers = par::num_threads().min(row_panels);
    if workers <= 1 {
        // Tight single-thread path: both packing buffers taken from TLS
        // once, then plain nested loops with no closures or raw pointers —
        // the closure-per-stripe structure of the parallel path measurably
        // inhibits the optimizer on small-k shapes.
        PACK_B.with(|bcell| {
            PACK_A.with(|acell| {
                let mut bp = bcell.take();
                let mut ap = acell.take();
                gemm_sequential(
                    kern, a, a_layout, b, b_layout, m, k, n, out, &mut bp, &mut ap,
                );
                bcell.replace(bp);
                acell.replace(ap);
            });
        });
        return;
    }

    let out_ptr = SendPtr(out.as_mut_ptr());
    for j0 in (0..n).step_by(NC) {
        let nc = NC.min(n - j0);
        PACK_B.with(|cell| {
            let mut bp = cell.take();
            pack_b_stripe(b, b_layout, k, n, j0, nc, &mut bp);
            // One worker scope per column stripe: panels are claimed
            // dynamically and each worker takes its packing buffer once
            // per stripe. Workers own disjoint row panels, and the
            // k-accumulation order per element is fixed, so results do not
            // depend on the claim order or worker count. Known tradeoff:
            // wide outputs re-spawn the scope per 256-column stripe
            // (~tens of µs each) — hoisting the scope above the stripe
            // loop needs a per-stripe pack barrier; revisit if multi-core
            // training becomes the bottleneck.
            let next = std::sync::atomic::AtomicUsize::new(0);
            let (bp_ref, out_ref, next_ref) = (&bp, &out_ptr, &next);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        PACK_A.with(|acell| {
                            let mut ap = acell.take();
                            loop {
                                // Relaxed: the fetch_add only needs to hand
                                // out unique panel indices; the thread-scope
                                // join publishes the written rows.
                                let panel =
                                    next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed); // Relaxed: see above.
                                if panel >= row_panels {
                                    break;
                                }
                                run_panel(
                                    kern, a, a_layout, m, k, n, panel, j0, nc, bp_ref, &mut ap,
                                    out_ref,
                                );
                            }
                            acell.replace(ap);
                        });
                    });
                }
            });
            cell.replace(bp);
        });
    }
}

/// The single-worker kernel body: identical blocking and accumulation
/// order to the parallel path (so results are bitwise equal), written as
/// plain loops over `&mut out`.
#[allow(clippy::too_many_arguments)]
fn gemm_sequential(
    kern: GemmKernel,
    a: &[f32],
    a_layout: Layout,
    b: &[f32],
    b_layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    bp: &mut Vec<f32>,
    ap: &mut Vec<f32>,
) {
    let row_panels = m.div_ceil(MR);
    for j0 in (0..n).step_by(NC) {
        let nc = NC.min(n - j0);
        pack_b_stripe(b, b_layout, k, n, j0, nc, bp);
        for panel in 0..row_panels {
            let i0 = panel * MR;
            let mr = MR.min(m - i0);
            pack_a_panel(a, a_layout, m, k, i0, mr, ap);
            let tiles = nc.div_ceil(NR);
            for jt in 0..tiles {
                let jbase = j0 + jt * NR;
                let jlim = NR.min(j0 + nc - jbase);
                let mut acc = [[0.0f32; NR]; MR];
                microkernel(kern, ap, &bp[jt * k * NR..(jt + 1) * k * NR], k, &mut acc);
                for r in 0..mr {
                    let orow = &mut out[(i0 + r) * n + jbase..(i0 + r) * n + jbase + jlim];
                    for (o, &v) in orow.iter_mut().zip(&acc[r][..jlim]) {
                        *o = v;
                    }
                }
            }
        }
    }
}

/// Packs one `MR`-row panel of A and sweeps it across the packed B stripe,
/// writing the output rows this panel owns (each output element is produced
/// by exactly one panel × tile pair, so rows are stored directly — no
/// pre-zeroing of `out` needed).
#[allow(clippy::too_many_arguments)]
#[inline]
fn run_panel(
    kern: GemmKernel,
    a: &[f32],
    a_layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    panel: usize,
    j0: usize,
    nc: usize,
    bp: &[f32],
    ap: &mut Vec<f32>,
    out_ptr: &SendPtr,
) {
    let i0 = panel * MR;
    let mr = MR.min(m - i0);
    pack_a_panel(a, a_layout, m, k, i0, mr, ap);
    let tiles = nc.div_ceil(NR);
    for jt in 0..tiles {
        let jbase = j0 + jt * NR;
        let jlim = NR.min(j0 + nc - jbase);
        let mut acc = [[0.0f32; NR]; MR];
        microkernel(kern, ap, &bp[jt * k * NR..(jt + 1) * k * NR], k, &mut acc);
        for r in 0..mr {
            // SAFETY: `out_ptr` points at the `m × n` output buffer, which
            // outlives the thread scope. Bounds: `i0 + r < m` (r < mr) and
            // `jbase + jlim <= n`, so the `jlim`-element row slice is in
            // bounds. Aliasing: each output row belongs to exactly one
            // panel and panels are claimed uniquely via `fetch_add`, so no
            // two workers ever overlap a row.
            let orow = unsafe {
                std::slice::from_raw_parts_mut(out_ptr.0.add((i0 + r) * n + jbase), jlim)
            };
            // Explicit store loop: `copy_from_slice` lowers to an
            // out-of-line memcpy call, measurable at tens of thousands of
            // sub-64-byte row writebacks per GEMM.
            for (o, &v) in orow.iter_mut().zip(&acc[r][..jlim]) {
                *o = v;
            }
        }
    }
}

/// Raw pointer wrapper asserting cross-thread transferability; the caller
/// guarantees workers touch disjoint rows.
struct SendPtr(*mut f32);
// SAFETY: the wrapper is only shared within a `thread::scope` whose workers
// write disjoint output rows (panel ownership is unique), so sending the
// pointer across threads cannot create aliased mutable access.
unsafe impl Send for SendPtr {}
// SAFETY: `&SendPtr` only exposes the raw pointer; all dereferencing sites
// uphold the disjoint-row contract documented above.
unsafe impl Sync for SendPtr {}

/// The pre-overhaul kernels, kept verbatim as benchmarking baselines and
/// parity oracles (see [`set_reference_kernels`]).
pub mod reference {
    use crate::par;

    const BLOCK: usize = 64;

    /// Pre-overhaul `A × B`: cache-blocked `ikj` with a zero-skip branch.
    pub fn matmul(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        out.fill(0.0);
        let out_ptr = SendPtr(out.as_mut_ptr());
        let row_blocks = m.div_ceil(BLOCK);
        par::par_for(row_blocks, |bi| {
            let i0 = bi * BLOCK;
            let i1 = (i0 + BLOCK).min(m);
            let out_ptr = &out_ptr;
            for p0 in (0..k).step_by(BLOCK) {
                let p1 = (p0 + BLOCK).min(k);
                for i in i0..i1 {
                    // SAFETY: `i < i1 <= m`, so row `i` lies inside the
                    // `m × n` output; `par_for` hands each row block to
                    // exactly one worker, so no other thread writes rows
                    // `i0..i1` concurrently.
                    let orow = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(i * n), n) };
                    for p in p0..p1 {
                        let av = a[i * k + p];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[p * n..(p + 1) * n];
                        for (ov, &bv) in orow.iter_mut().zip(brow) {
                            *ov += av * bv;
                        }
                    }
                }
            }
        });
    }

    /// Pre-overhaul `Aᵀ × B`: row-streaming accumulation with the
    /// `av == 0.0` skip branch that defeated vectorization on dense
    /// gradients.
    pub fn matmul_tn(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
        out.fill(0.0);
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let orow = &mut out[i * n..(i + 1) * n];
                for (ov, &bv) in orow.iter_mut().zip(brow) {
                    *ov += av * bv;
                }
            }
        }
    }

    /// Pre-overhaul `A × Bᵀ`: a scalar dot-product per output element (the
    /// sequential float reduction LLVM cannot reassociate, hence cannot
    /// vectorize).
    pub fn matmul_nt(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        let out_ptr = SendPtr(out.as_mut_ptr());
        let out_ptr = &out_ptr;
        par::par_for(m, |i| {
            // SAFETY: `i < m`, so row `i` is inside the `m × n` output, and
            // `par_for` assigns each `i` to exactly one worker — disjoint
            // row writes, no aliasing.
            let orow = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(i * n), n) };
            let arow = &a[i * k..(i + 1) * k];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow) {
                    acc += x * y;
                }
                *o = acc;
            }
        });
    }

    struct SendPtr(*mut f32);
    // SAFETY: shared only inside `par_for` scopes whose workers write
    // disjoint output rows; transferring the pointer cannot introduce
    // aliased mutable access.
    unsafe impl Send for SendPtr {}
    // SAFETY: `&SendPtr` exposes only the raw pointer value; every deref
    // site upholds the one-worker-per-row contract.
    unsafe impl Sync for SendPtr {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut t = vec![0.0f32; x.len()];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = x[r * cols + c];
            }
        }
        t
    }

    /// Shapes chosen to exercise every edge: unit, sub-tile, exact-tile,
    /// tall/skinny, fat/short, and spans crossing the KC/NC cache blocks.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 1),
        (3, 5, 2),
        (4, 16, 16),
        (5, 17, 19),
        (130, 3, 2),
        (2, 3, 130),
        (31, 300, 33),
        (16, 257, 272),
    ];

    #[test]
    fn gemm_matches_naive_for_all_layouts() {
        let mut rng = StdRng::seed_from_u64(99);
        for &(m, k, n) in SHAPES {
            let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let expect = naive(&a, &b, m, k, n);
            let at = transpose(&a, m, k);
            let bt = transpose(&b, k, n);
            let mut out = vec![0.0f32; m * n];
            for (abuf, al, bbuf, bl) in [
                (&a, Layout::RowMajor, &b, Layout::RowMajor),
                (&at, Layout::Transposed, &b, Layout::RowMajor),
                (&a, Layout::RowMajor, &bt, Layout::Transposed),
                (&at, Layout::Transposed, &bt, Layout::Transposed),
            ] {
                gemm(abuf, al, bbuf, bl, m, k, n, &mut out);
                for (got, want) in out.iter().zip(&expect) {
                    assert!(
                        (got - want).abs() <= 1e-3,
                        "({m},{k},{n}) {al:?}/{bl:?}: {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn gemm_overwrites_stale_output() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut out = vec![999.0f32; 1];
        gemm(
            &a,
            Layout::RowMajor,
            &b,
            Layout::RowMajor,
            1,
            2,
            1,
            &mut out,
        );
        assert_eq!(out[0], 11.0);
    }

    #[test]
    fn reference_kernels_match_naive() {
        let mut rng = StdRng::seed_from_u64(100);
        for &(m, k, n) in &[(3, 5, 2), (17, 33, 9)] {
            let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let expect = naive(&a, &b, m, k, n);
            let mut out = vec![0.0f32; m * n];
            reference::matmul(&a, &b, &mut out, m, k, n);
            assert!(out.iter().zip(&expect).all(|(g, w)| (g - w).abs() < 1e-3));
            let at = transpose(&a, m, k);
            reference::matmul_tn(&at, &b, &mut out, k, m, n);
            assert!(out.iter().zip(&expect).all(|(g, w)| (g - w).abs() < 1e-3));
            let bt = transpose(&b, k, n);
            reference::matmul_nt(&a, &bt, &mut out, m, k, n);
            assert!(out.iter().zip(&expect).all(|(g, w)| (g - w).abs() < 1e-3));
        }
    }

    /// Satellite regression test for the `cfg(target_feature = "fma")` bug:
    /// the forced-scalar and runtime-dispatched micro kernels must agree
    /// **bit for bit** on the same host (the canonical fused contraction
    /// order is one set of numerics, whatever ISA executes it), and both
    /// must agree with the naive oracle to tolerance.
    #[test]
    fn forced_scalar_and_dispatched_gemm_bitwise_equal() {
        let _guard = TEST_GLOBALS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in SHAPES {
            let a: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let b: Vec<f32> = (0..k * n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
            let mut scalar_out = vec![0.0f32; m * n];
            let mut simd_out = vec![0.0f32; m * n];
            crate::kernels::dispatch::set_forced_scalar(true);
            gemm(
                &a,
                Layout::RowMajor,
                &b,
                Layout::RowMajor,
                m,
                k,
                n,
                &mut scalar_out,
            );
            crate::kernels::dispatch::set_forced_scalar(false);
            gemm(
                &a,
                Layout::RowMajor,
                &b,
                Layout::RowMajor,
                m,
                k,
                n,
                &mut simd_out,
            );
            crate::kernels::dispatch::clear_forced_scalar();
            for (i, (s, d)) in scalar_out.iter().zip(&simd_out).enumerate() {
                assert_eq!(
                    s.to_bits(),
                    d.to_bits(),
                    "({m},{k},{n}) elem {i}: scalar {s} vs dispatched {d}"
                );
            }
            let expect = naive(&a, &b, m, k, n);
            for (got, want) in simd_out.iter().zip(&expect) {
                assert!((got - want).abs() <= 1e-3, "({m},{k},{n}): {got} vs {want}");
            }
        }
    }

    #[test]
    fn reference_mode_toggle_roundtrip() {
        // Hold the globals lock so concurrently running bitwise-equality
        // tests never observe the toggled kernel routing.
        let _guard = TEST_GLOBALS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!reference_kernels_enabled());
        set_reference_kernels(true);
        assert!(reference_kernels_enabled());
        set_reference_kernels(false);
        assert!(!reference_kernels_enabled());
    }
}
