//! Cross-kernel parity: the runtime-dispatched SIMD kernels must be
//! bitwise equal to the forced-scalar oracle on every public entry point,
//! at every word-boundary length, on adversarial float inputs (NaN,
//! `±0.0`, infinities) — the invariant ARCHITECTURE.md states as "numeric
//! results are host-invariant; the instruction set only changes speed".

use std::sync::Mutex;

use rbnn_tensor::{
    clear_forced_scalar, set_forced_scalar, sign_bit, xnor_popcount, BitMatrix, BitVec, Tensor,
};

/// Serializes tests that toggle the process-global forced-scalar override.
static SCALAR_TOGGLE: Mutex<()> = Mutex::new(());

/// Bit lengths hitting every word-boundary edge: empty, single bit, one
/// bit below/at/above one and two words, and a long multi-block length
/// that exercises the Harley-Seal 16-vector blocks (8191 = 128 words − 1).
const EDGE_LENGTHS: &[usize] = &[0, 1, 63, 64, 65, 127, 128, 8191];

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

/// Pseudorandom floats salted with the special values the canonical
/// `sign_bit` predicate pins: NaN → −1, `-0.0` → +1.
fn adversarial_values(len: usize, seed: &mut u64) -> Vec<f32> {
    (0..len)
        .map(|i| match i % 11 {
            0 => f32::NAN,
            1 => -0.0,
            2 => 0.0,
            3 => f32::NEG_INFINITY,
            4 => f32::INFINITY,
            5 => -f32::NAN,
            _ => (xorshift(seed) as i64 as f32) / 1e17,
        })
        .collect()
}

fn random_words(n: usize, seed: &mut u64) -> Vec<u64> {
    (0..n).map(|_| xorshift(&mut *seed)).collect()
}

/// Runs `f` once with the scalar override on and once with dispatch
/// active, returning both results for bitwise comparison.
fn both_modes<T>(mut f: impl FnMut() -> T) -> (T, T) {
    set_forced_scalar(true);
    let scalar = f();
    set_forced_scalar(false);
    let dispatched = f();
    clear_forced_scalar();
    (scalar, dispatched)
}

#[test]
fn popcount_dispatched_matches_scalar_at_word_boundaries() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seed = 0x9e37_79b9_7f4a_7c15u64;
    for &len in EDGE_LENGTHS {
        let nw = len.div_ceil(64);
        let a = random_words(nw, &mut seed);
        let b = random_words(nw, &mut seed);
        let (scalar, dispatched) = both_modes(|| xnor_popcount(&a, &b, len));
        assert_eq!(scalar, dispatched, "len {len}");
        // And against a per-bit oracle.
        let mut expect = 0u32;
        for i in 0..len {
            let ba = (a[i / 64] >> (i % 64)) & 1;
            let bb = (b[i / 64] >> (i % 64)) & 1;
            expect += (ba == bb) as u32;
        }
        assert_eq!(dispatched, expect, "len {len} vs per-bit oracle");
    }
}

#[test]
fn popcount_ignores_junk_words_beyond_words_for_len() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seed = 0x2545_f491_4f6c_dd1du64;
    for &len in EDGE_LENGTHS {
        let nw = len.div_ceil(64);
        let mut a = random_words(nw, &mut seed);
        let mut b = random_words(nw, &mut seed);
        let clean = xnor_popcount(&a, &b, len);
        // Slices longer than words_for(len), padded with junk the kernel
        // must never read into the count — including a full-ones word that
        // would add 64 matches if the tail masking slipped.
        a.extend_from_slice(&[u64::MAX, 0xdead_beef_dead_beefu64, 0]);
        b.extend_from_slice(&[u64::MAX, 0x1234_5678_9abc_def0u64, u64::MAX]);
        let (scalar, dispatched) = both_modes(|| xnor_popcount(&a, &b, len));
        assert_eq!(scalar, clean, "len {len}: scalar read past words_for");
        assert_eq!(
            dispatched, clean,
            "len {len}: dispatched read past words_for"
        );
    }
}

#[test]
fn bitvec_ops_dispatched_match_scalar_bitwise() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seed = 0xda3e_39cb_94b9_5bdbu64;
    for &len in EDGE_LENGTHS {
        let values_a = adversarial_values(len, &mut seed);
        let values_b = adversarial_values(len, &mut seed);
        let (scalar, dispatched) = both_modes(|| {
            let va = BitVec::from_signs(&values_a);
            let vb = BitVec::from_signs(&values_b);
            let pop = if len > 0 { va.xnor_popcount(&vb) } else { 0 };
            (va.as_words().to_vec(), vb.as_words().to_vec(), pop)
        });
        assert_eq!(scalar, dispatched, "len {len}");
    }
}

#[test]
fn bitmatrix_packing_dispatched_matches_scalar_bitwise() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seed = 0xb5ad_4ece_da1c_e2a9u64;
    for &cols in &[1usize, 63, 64, 65, 127, 128, 408] {
        let rows = 5usize;
        let values = adversarial_values(rows * cols, &mut seed);
        let row_slices: Vec<&[f32]> = values.chunks(cols).collect();
        let (scalar, dispatched) = both_modes(|| {
            let m = BitMatrix::from_signs(&values, rows, cols);
            let r = BitMatrix::from_sign_rows(&row_slices, cols);
            assert_eq!(m, r, "from_signs vs from_sign_rows at cols {cols}");
            m
        });
        assert_eq!(scalar, dispatched, "cols {cols}");
    }
}

/// Satellite 2: the four binarization entry points share one canonical
/// predicate, so NaN and `-0.0` (and everything else) map identically
/// through every one of them.
#[test]
fn binarization_semantics_pinned_across_entry_points() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seed = 0xc2b2_ae3d_27d4_eb4fu64;
    let values = adversarial_values(131, &mut seed);
    for forced in [true, false] {
        set_forced_scalar(forced);
        let bv = BitVec::from_signs(&values);
        let bm = BitMatrix::from_signs(&values, 1, values.len());
        let t = Tensor::from_vec(values.clone(), &[values.len()]);
        let sig = t.signum_binary();
        let mut sig_into = Tensor::zeros(&[values.len()]);
        t.signum_binary_into(&mut sig_into);
        for (i, &v) in values.iter().enumerate() {
            let expect = sign_bit(v);
            assert_eq!(bv.get(i), expect, "BitVec bit {i} of {v} (forced={forced})");
            assert_eq!(bm.get(0, i), expect, "BitMatrix bit {i} of {v}");
            assert_eq!(sig.as_slice()[i] == 1.0, expect, "signum_binary {i} of {v}");
            assert_eq!(
                sig_into.as_slice()[i],
                sig.as_slice()[i],
                "signum_binary_into {i} of {v}"
            );
            // The predicate itself stays what the docs promise.
            if v.is_nan() {
                assert!(!expect, "NaN must binarize to -1");
            }
            if v == 0.0 {
                assert!(expect, "±0.0 must binarize to +1");
            }
        }
    }
    clear_forced_scalar();
}

#[test]
fn matmul_dispatched_matches_scalar_bitwise() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let mut seed = 0x27d4_eb2f_1656_67c5u64;
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (4, 16, 16),
        (5, 17, 19),
        (31, 300, 33),
    ] {
        let a_values: Vec<f32> = (0..m * k)
            .map(|_| (xorshift(&mut seed) as i64 as f32) / 1e17)
            .collect();
        let b_values: Vec<f32> = (0..k * n)
            .map(|_| (xorshift(&mut seed) as i64 as f32) / 1e17)
            .collect();
        let ta = Tensor::from_vec(a_values, &[m, k]);
        let tb = Tensor::from_vec(b_values, &[k, n]);
        let (scalar, dispatched) = both_modes(|| ta.matmul(&tb));
        for (i, (s, d)) in scalar
            .as_slice()
            .iter()
            .zip(dispatched.as_slice())
            .enumerate()
        {
            assert_eq!(
                s.to_bits(),
                d.to_bits(),
                "({m},{k},{n}) elem {i}: {s} vs {d}"
            );
        }
    }
}
