//! Lowering: an explicit op graph for a deployed binarized network.
//!
//! The graph makes the stages the legacy `Layer` path executes implicitly
//! — and the tensors it materializes between them — explicit, so the fusion
//! pass ([`crate::fuse`]) can reason about which values are genuinely live
//! and which exist only because the layer-by-layer API had no way to stream
//! one stage into the next.

use rbnn_binary::{export_classifier, BinaryNetwork, ExportError};
use rbnn_nn::Sequential;

/// A primitive op in the unfused graph. `layer` indexes
/// [`BinaryNetwork::layers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Binarize a float input row and pack its sign bits into words.
    PackInput {
        /// Feature width of the float input.
        width: usize,
    },
    /// Per output neuron of `layer`: `popcount(XNOR(w_r, x))`.
    XnorPopcount {
        /// Layer index.
        layer: usize,
    },
    /// Compare each popcount against the folded integer threshold (Eq. 3).
    Threshold {
        /// Layer index.
        layer: usize,
    },
    /// Pack the threshold verdicts into ±1 sign bits.
    SignPack {
        /// Layer index.
        layer: usize,
    },
    /// Output-layer affine read-out: `scale·(2p − n) + shift` per class.
    Affine {
        /// Layer index (always the final layer).
        layer: usize,
    },
}

/// What a graph value holds, per element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Row-major `f32` features or logits.
    Floats,
    /// Bit-packed ±1 activations (64 per word).
    Bits,
    /// Raw `u32` popcounts, one per output neuron.
    Counts,
    /// Boolean threshold verdicts, one per output neuron.
    Flags,
}

/// A value (edge) in the graph: one logical per-sample tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueInfo {
    /// Element kind.
    pub kind: ValueKind,
    /// Per-sample element count.
    pub width: usize,
}

/// A node: one primitive op consuming `input` and defining `output`
/// (value indices into [`OpGraph::values`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Node {
    /// The op.
    pub op: Op,
    /// Consumed value index.
    pub input: usize,
    /// Defined value index.
    pub output: usize,
}

/// The unfused op graph for one deployed network, paired with the network
/// itself (weights, thresholds and affine parameters are read from it at
/// compile and replay time — the graph never copies them).
#[derive(Debug, Clone)]
pub struct OpGraph {
    network: BinaryNetwork,
    nodes: Vec<Node>,
    values: Vec<ValueInfo>,
}

impl OpGraph {
    /// The network this graph was lowered from.
    pub fn network(&self) -> &BinaryNetwork {
        &self.network
    }

    /// Nodes in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Value table (indexed by [`Node::input`] / [`Node::output`]).
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.network.in_features()
    }

    /// Number of output classes.
    pub fn out_features(&self) -> usize {
        self.network.out_features()
    }
}

/// Lowers a deployed [`BinaryNetwork`] into the explicit op graph the
/// legacy path executes implicitly: `PackInput`, then per hidden layer
/// `XnorPopcount → Threshold → SignPack`, then `XnorPopcount → Affine` for
/// the output layer.
///
/// # Panics
///
/// Panics if the network has no layers (a [`BinaryNetwork`] always has at
/// least one).
pub fn lower(network: &BinaryNetwork) -> OpGraph {
    let layers = network.layers();
    assert!(!layers.is_empty(), "cannot lower an empty network");
    let mut values = vec![ValueInfo {
        kind: ValueKind::Floats,
        width: network.in_features(),
    }];
    let mut nodes = Vec::new();
    let push = |nodes: &mut Vec<Node>, values: &mut Vec<ValueInfo>, op, input, info| {
        values.push(info);
        let output = values.len() - 1;
        nodes.push(Node { op, input, output });
        output
    };
    let mut cur = push(
        &mut nodes,
        &mut values,
        Op::PackInput {
            width: network.in_features(),
        },
        0,
        ValueInfo {
            kind: ValueKind::Bits,
            width: network.in_features(),
        },
    );
    let last = layers.len() - 1;
    for (l, layer) in layers.iter().enumerate() {
        let out = layer.out_features();
        let counts = push(
            &mut nodes,
            &mut values,
            Op::XnorPopcount { layer: l },
            cur,
            ValueInfo {
                kind: ValueKind::Counts,
                width: out,
            },
        );
        if l == last {
            cur = push(
                &mut nodes,
                &mut values,
                Op::Affine { layer: l },
                counts,
                ValueInfo {
                    kind: ValueKind::Floats,
                    width: out,
                },
            );
        } else {
            let flags = push(
                &mut nodes,
                &mut values,
                Op::Threshold { layer: l },
                counts,
                ValueInfo {
                    kind: ValueKind::Flags,
                    width: out,
                },
            );
            cur = push(
                &mut nodes,
                &mut values,
                Op::SignPack { layer: l },
                flags,
                ValueInfo {
                    kind: ValueKind::Bits,
                    width: out,
                },
            );
        }
    }
    let _ = cur;
    OpGraph {
        network: network.clone(),
        nodes,
        values,
    }
}

/// Lowers a trained `rbnn-nn` binarized classifier by first exporting it
/// bit-exactly to a [`BinaryNetwork`] (see
/// [`export_classifier`](rbnn_binary::export_classifier)), then lowering
/// that.
pub fn lower_sequential(classifier: &Sequential) -> Result<OpGraph, ExportError> {
    Ok(lower(&export_classifier(classifier)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbnn_binary::BinaryDense;
    use rbnn_tensor::BitMatrix;

    fn net(dims: &[usize]) -> BinaryNetwork {
        let layers = dims
            .windows(2)
            .map(|w| {
                let (inp, out) = (w[0], w[1]);
                let signs: Vec<f32> = (0..inp * out)
                    .map(|i| if i % 3 == 0 { -1.0 } else { 1.0 })
                    .collect();
                BinaryDense::new(
                    BitMatrix::from_signs(&signs, out, inp),
                    vec![1.0; out],
                    vec![0.0; out],
                )
            })
            .collect();
        BinaryNetwork::new(layers)
    }

    #[test]
    fn lowering_emits_the_legacy_stage_sequence() {
        let g = lower(&net(&[65, 33, 4]));
        let ops: Vec<Op> = g.nodes().iter().map(|n| n.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::PackInput { width: 65 },
                Op::XnorPopcount { layer: 0 },
                Op::Threshold { layer: 0 },
                Op::SignPack { layer: 0 },
                Op::XnorPopcount { layer: 1 },
                Op::Affine { layer: 1 },
            ]
        );
        // Every node's input is the previous node's output: a pure chain.
        for pair in g.nodes().windows(2) {
            assert_eq!(pair[1].input, pair[0].output);
        }
        assert_eq!(g.values()[0].kind, ValueKind::Floats);
        assert_eq!(g.out_features(), 4);
    }

    #[test]
    fn single_layer_network_lowers_to_pack_then_affine() {
        let g = lower(&net(&[7, 3]));
        let ops: Vec<Op> = g.nodes().iter().map(|n| n.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::PackInput { width: 7 },
                Op::XnorPopcount { layer: 0 },
                Op::Affine { layer: 0 },
            ]
        );
    }
}
