//! # rbnn-graph
//!
//! Op-graph executor for deployed binarized networks: lowers a
//! [`BinaryNetwork`](rbnn_binary::BinaryNetwork) (or a trained `rbnn-nn`
//! classifier) into an explicit op graph, fuses each
//! binarize→XNOR-popcount→threshold→sign chain into a single packed-word
//! kernel, plans buffer reuse from exact tensor lifetimes, and compiles the
//! result into a static [`ExecPlan`] that serving workers replay with zero
//! per-request planning or allocation.
//!
//! The pipeline has four stages, each independently testable:
//!
//! 1. **Lowering** ([`lower`] / [`lower_sequential`]) — the model becomes an
//!    explicit [`OpGraph`] of primitive ops (`PackInput`, `XnorPopcount`,
//!    `Threshold`, `SignPack`, `Affine`) over typed values, exactly the
//!    stages the legacy `Layer` path materializes between.
//! 2. **Fusion** ([`fuse`]) — adjacent `XnorPopcount → Threshold → SignPack`
//!    runs collapse into one [`FusedOp::FusedHidden`] and the final
//!    `XnorPopcount → Affine` into [`FusedOp::FusedLogits`]; after fusion the
//!    only materialized values are bit-packed activation matrices. This is
//!    the software analogue of the paper's in-memory datapath: one pass over
//!    packed words, no intermediate count/flag tensors written back.
//! 3. **Lifetime planning** ([`plan_arena`]) — every surviving buffer gets a
//!    `[first-def, last-use]` interval and a best-fit offset in a single
//!    coalescing word arena, so buffers with disjoint lifetimes share
//!    storage and peak plan memory never exceeds naive per-op allocation.
//! 4. **Replay** ([`ExecPlan::replay_rows`]) — a compiled `(model,
//!    max_batch)` plan streams packed words through the runtime-dispatched
//!    `rbnn-tensor` kernels into caller-provided buffers. The replay path is
//!    a zero-alloc zone enforced by `analysis.toml` (RA0005).
//!
//! Bitwise parity with the legacy layer-by-layer path is by construction —
//! fusion changes loop order and materialization, never arithmetic — and is
//! locked by the conformance oracle's fifth path (`plan_bitwise`), which
//! replays every generated model through an `ExecPlan` and requires
//! bit-for-bit equality with `BinaryNetwork::logits_batch`.
//!
//! ```
//! use rbnn_binary::BinaryNetwork;
//! use rbnn_graph::ExecPlan;
//! # use rbnn_tensor::BitMatrix;
//! # use rbnn_binary::BinaryDense;
//! # let w = BitMatrix::from_signs(&[1.0, -1.0, 1.0, 1.0, 1.0, 1.0], 2, 3);
//! # let net = BinaryNetwork::new(vec![BinaryDense::new(w, vec![1.0, 1.0], vec![0.0, 0.0])]);
//!
//! let plan = ExecPlan::compile(&net, 8);
//! let mut buffers = plan.buffers();
//! let rows = [[1.0_f32, -1.0, 1.0]];
//! let row_refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
//! let mut logits = vec![0.0; plan.out_features()];
//! plan.replay_rows(&row_refs, &mut buffers, &mut logits);
//! assert_eq!(logits, net.logits(&rows[0]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod exec;
mod fuse;
mod graph;
mod plan;

pub use exec::{pack_rows, threshold_pack_row, ExecPlan, PlanBuffers, Region, Step};
pub use fuse::{fuse, FusedGraph, FusedOp, FusedStep};
pub use graph::{lower, lower_sequential, Node, Op, OpGraph, ValueInfo, ValueKind};
pub use plan::{plan_arena, ArenaPlan, BufferRequest};
