//! Lifetime planning: best-fit offsets in one coalescing word arena.
//!
//! Every buffer surviving fusion gets a `[first-def, last-use]` step
//! interval. The planner walks buffers in definition order, retiring any
//! buffer whose interval ended strictly before the current step (a step
//! both reads its source and writes its destination, so a buffer read at
//! step `s` is *not* reusable for a buffer defined at step `s` — fused
//! kernels never run in place), and assigns each new buffer the smallest
//! free block that fits, extending the arena end only when nothing does.
//! Freed blocks coalesce with their neighbours, and growth absorbs a
//! trailing free block, so shrink–grow sequences reuse the high end
//! instead of fragmenting past it.
//!
//! The planner is fully deterministic — identical requests yield identical
//! offsets — which is what makes a compiled [`crate::ExecPlan`]
//! reproducible byte for byte.

/// One buffer's lifetime and size, in arena words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferRequest {
    /// Step index that defines (writes) the buffer.
    pub def: usize,
    /// Last step index that reads it (`>= def`).
    pub last_use: usize,
    /// Size in `u64` words.
    pub words: usize,
}

/// The planner's output: one offset per request plus the arena size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaPlan {
    /// Word offset of each buffer, indexed like the request slice.
    pub offsets: Vec<usize>,
    /// Total arena size in words (the plan's peak memory).
    pub total_words: usize,
}

/// Sorted-by-offset free list over a growable arena.
#[derive(Debug, Default)]
struct FreeArena {
    free: Vec<(usize, usize)>,
    total: usize,
}

impl FreeArena {
    /// Best-fit allocation: the smallest free block that fits (ties to the
    /// lowest offset); otherwise the arena end grows, absorbing a trailing
    /// free block so growth coalesces with prior shrinkage.
    fn alloc(&mut self, words: usize) -> usize {
        if words == 0 {
            return 0;
        }
        let mut best: Option<usize> = None;
        for (k, &(_, len)) in self.free.iter().enumerate() {
            if len >= words {
                best = match best {
                    Some(b) if self.free[b].1 <= len => Some(b),
                    _ => Some(k),
                };
            }
        }
        if let Some(k) = best {
            let (off, len) = self.free[k];
            if len == words {
                self.free.remove(k);
            } else {
                self.free[k] = (off + words, len - words);
            }
            return off;
        }
        if let Some(&(off, len)) = self.free.last() {
            if off + len == self.total {
                self.free.pop();
                self.total = off + words;
                return off;
            }
        }
        let off = self.total;
        self.total += words;
        off
    }

    /// Returns a block, merging it with adjacent free neighbours.
    fn release(&mut self, offset: usize, words: usize) {
        if words == 0 {
            return;
        }
        let pos = self.free.partition_point(|&(o, _)| o < offset);
        self.free.insert(pos, (offset, words));
        if pos + 1 < self.free.len() && offset + words == self.free[pos + 1].0 {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == offset {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }
}

/// Plans arena offsets for a set of buffer lifetimes.
///
/// Guarantees, property-tested in this module:
///
/// * two buffers whose intervals overlap (including a reader and a writer
///   of the same step) never alias;
/// * `total_words` never exceeds the naive per-op sum of all sizes;
/// * the output is a pure function of the input (deterministic).
///
/// # Panics
///
/// Panics if any request has `last_use < def`.
pub fn plan_arena(requests: &[BufferRequest]) -> ArenaPlan {
    for r in requests {
        assert!(r.last_use >= r.def, "buffer dies before it is defined");
    }
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by_key(|&i| (requests[i].def, i));
    let mut offsets = vec![0usize; requests.len()];
    let mut arena = FreeArena::default();
    let mut live: Vec<usize> = Vec::new();
    for &i in &order {
        let def = requests[i].def;
        live.retain(|&j| {
            if requests[j].last_use < def {
                arena.release(offsets[j], requests[j].words);
                false
            } else {
                true
            }
        });
        offsets[i] = arena.alloc(requests[i].words);
        live.push(i);
    }
    ArenaPlan {
        offsets,
        total_words: arena.total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn overlap(a: &BufferRequest, b: &BufferRequest) -> bool {
        a.def <= b.last_use && b.def <= a.last_use
    }

    fn disjoint(ra: (usize, usize), rb: (usize, usize)) -> bool {
        ra.0 + ra.1 <= rb.0 || rb.0 + rb.1 <= ra.0
    }

    #[test]
    fn chain_lifetimes_reuse_dead_blocks() {
        // A 4-step chain: buffer k defined at step k, read at step k+1.
        let reqs: Vec<BufferRequest> = (0..4)
            .map(|k| BufferRequest {
                def: k,
                last_use: k + 1,
                words: 10,
            })
            .collect();
        let plan = plan_arena(&reqs);
        // Peak is two live buffers, not four.
        assert_eq!(plan.total_words, 20);
        // Adjacent buffers (simultaneously live) never alias.
        for k in 0..3 {
            assert!(disjoint(
                (plan.offsets[k], reqs[k].words),
                (plan.offsets[k + 1], reqs[k + 1].words)
            ));
        }
    }

    #[test]
    fn seeded_random_interval_sets_never_alias_and_never_exceed_naive() {
        let mut rng = StdRng::seed_from_u64(0x9_1A7);
        for _ in 0..200 {
            let n = rng.gen_range(1..24);
            let reqs: Vec<BufferRequest> = (0..n)
                .map(|_| {
                    let def = rng.gen_range(0..16);
                    BufferRequest {
                        def,
                        last_use: def + rng.gen_range(0..8),
                        words: rng.gen_range(0..64),
                    }
                })
                .collect();
            let plan = plan_arena(&reqs);

            // No two simultaneously-live buffers may share any word.
            for a in 0..reqs.len() {
                for b in (a + 1)..reqs.len() {
                    if overlap(&reqs[a], &reqs[b]) && reqs[a].words > 0 && reqs[b].words > 0 {
                        assert!(
                            disjoint(
                                (plan.offsets[a], reqs[a].words),
                                (plan.offsets[b], reqs[b].words)
                            ),
                            "aliasing live buffers: {:?} {:?} in {reqs:?}",
                            (plan.offsets[a], reqs[a].words),
                            (plan.offsets[b], reqs[b].words),
                        );
                    }
                }
            }

            // Peak plan words never exceed naive per-op allocation.
            let naive: usize = reqs.iter().map(|r| r.words).sum();
            assert!(
                plan.total_words <= naive,
                "plan {plan:?} beats naive {naive}"
            );

            // Deterministic: re-planning the same intervals is identical.
            assert_eq!(plan, plan_arena(&reqs));
        }
    }

    #[test]
    fn growth_absorbs_a_trailing_free_block() {
        let mut arena = FreeArena::default();
        let a = arena.alloc(8);
        let b = arena.alloc(8);
        arena.release(b, 8);
        // 12 words do not fit in the 8-word tail hole, but growth extends
        // it instead of appending past it.
        let c = arena.alloc(12);
        assert_eq!(c, 8);
        assert_eq!(arena.total, 20);
        let _ = a;
    }

    #[test]
    fn release_coalesces_with_both_neighbours() {
        let mut arena = FreeArena::default();
        let a = arena.alloc(4);
        let b = arena.alloc(4);
        let c = arena.alloc(4);
        let _tail = arena.alloc(1); // pin the end so coalescing is observable
        arena.release(a, 4);
        arena.release(c, 4);
        arena.release(b, 4);
        assert_eq!(arena.free, vec![(0, 12)]);
    }
}
