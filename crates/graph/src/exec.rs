//! Static execution plans: compile once, replay with zero allocation.
//!
//! [`ExecPlan::compile`] runs the whole pipeline — lower, fuse, plan — for
//! one `(model, max_batch)` pair and freezes the result: fused steps with
//! resolved arena regions, folded thresholds, and affine parameters. A
//! worker then replays the plan for any batch of up to `max_batch` rows via
//! [`ExecPlan::replay_rows`], which touches only caller-provided storage
//! ([`PlanBuffers`] and the output slice). The replay functions in this
//! module form an `analysis.toml` zero-alloc zone (RA0005): no heap
//! operation is permitted between a request arriving and its logits being
//! written.
//!
//! Replay is bitwise-equal to the legacy layer-by-layer path by
//! construction: packing uses the same dispatched sign-pack kernel,
//! popcounts the same dispatched XNOR-popcount kernel, hidden activations
//! the same [`FoldedThreshold::fire`] comparison, and logits the same
//! `scale · (2p − n) + shift` float expression evaluated in the same
//! per-sample, ascending-neuron order.

use crate::fuse::{fuse, FusedOp};
use crate::graph::lower;
use crate::plan::{plan_arena, BufferRequest};
use rbnn_binary::{BinaryNetwork, FoldedThreshold};
use rbnn_tensor::{pack_signs_into, InterleavedRows};

const WORD_BITS: usize = 64;

#[inline]
fn words_for(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

/// A resolved arena region holding one bit-packed activation matrix:
/// `max_batch` rows of `width` bits, `words_per_row` words apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First word of the region in the arena.
    pub offset: usize,
    /// Words per packed row (`width.div_ceil(64)`).
    pub words_per_row: usize,
    /// Valid bits per row.
    pub width: usize,
}

impl Region {
    /// Row `i` of the region, immutably.
    #[inline]
    pub fn row<'a>(&self, arena: &'a [u64], i: usize) -> &'a [u64] {
        &arena[self.offset + i * self.words_per_row..][..self.words_per_row]
    }

    /// Row `i` of the region, mutably.
    #[inline]
    pub fn row_mut<'a>(&self, arena: &'a mut [u64], i: usize) -> &'a mut [u64] {
        &mut arena[self.offset + i * self.words_per_row..][..self.words_per_row]
    }
}

/// One compiled step of an [`ExecPlan`].
///
/// The variants mirror [`FusedOp`](crate::FusedOp) with buffer indices
/// resolved to arena [`Region`]s and per-layer parameters (folded
/// thresholds, affine scale/shift) frozen at compile time so replay never
/// recomputes them.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Binarize + pack the float input rows into `dst`.
    Pack {
        /// Packed-input region.
        dst: Region,
    },
    /// Fused hidden layer: XNOR-popcount → threshold → sign-pack, one pass
    /// from `src` to `dst` with no materialized count matrix.
    FusedHidden {
        /// Layer index into the plan's network.
        layer: usize,
        /// Input activation region.
        src: Region,
        /// Output activation region.
        dst: Region,
        /// Folded integer thresholds, one per output neuron.
        thresholds: Vec<FoldedThreshold>,
        /// Weight rows copied into the batched popcount kernel's
        /// lane-interleaved layout at compile time.
        weights: InterleavedRows,
    },
    /// Fused output layer: XNOR-popcount → affine logits straight into the
    /// caller's output slice.
    FusedLogits {
        /// Layer index into the plan's network.
        layer: usize,
        /// Input activation region.
        src: Region,
        /// Per-class affine scale.
        scale: Vec<f32>,
        /// Per-class affine shift.
        shift: Vec<f32>,
        /// Weight rows copied into the batched popcount kernel's
        /// lane-interleaved layout at compile time.
        weights: InterleavedRows,
    },
}

/// Caller-owned replay storage for one [`ExecPlan`]: the word arena every
/// packed activation region lives in, plus the per-sample popcount scratch
/// the fused kernels stream counts through. Allocated once by
/// [`ExecPlan::buffers`]; replay never grows either.
#[derive(Debug, Clone)]
pub struct PlanBuffers {
    arena: Vec<u64>,
    counts: Vec<u32>,
}

impl PlanBuffers {
    /// The arena words, immutably.
    pub fn arena(&self) -> &[u64] {
        &self.arena
    }

    /// The arena words, mutably (for engine-backed replay, e.g.
    /// `rbnn-rram`).
    pub fn arena_mut(&mut self) -> &mut [u64] {
        &mut self.arena
    }
}

/// A static execution plan for one `(model, max_batch)` pair.
///
/// Compiling is the expensive, allocating part (lowering, fusion, lifetime
/// planning, threshold folding); replaying is allocation-free and valid for
/// any batch of `1..=max_batch` rows — region offsets computed for
/// `max_batch` rows remain correct for smaller batches because rows are
/// packed from each region's start.
#[derive(Debug, Clone)]
pub struct ExecPlan {
    network: BinaryNetwork,
    steps: Vec<Step>,
    arena_words: usize,
    naive_words: usize,
    counts_len: usize,
    max_batch: usize,
    in_features: usize,
    out_features: usize,
}

impl ExecPlan {
    /// Compiles a plan: lowers the network, fuses the stage chains, plans
    /// buffer lifetimes into a coalescing arena, and folds every hidden
    /// layer's BatchNorm thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn compile(network: &BinaryNetwork, max_batch: usize) -> Self {
        assert!(max_batch > 0, "a plan must admit at least one row");
        let fused = fuse(&lower(network));
        let widths = fused.buffer_widths();

        // Buffer lifetimes: defined by the step whose `dst` names them,
        // last read by the latest step whose `src` does.
        let mut requests: Vec<BufferRequest> = widths
            .iter()
            .map(|&w| BufferRequest {
                def: 0,
                last_use: 0,
                words: max_batch * words_for(w),
            })
            .collect();
        for (s, step) in fused.steps().iter().enumerate() {
            if step.dst != usize::MAX {
                requests[step.dst].def = s;
                requests[step.dst].last_use = requests[step.dst].last_use.max(s);
            }
            if step.src != usize::MAX {
                requests[step.src].last_use = requests[step.src].last_use.max(s);
            }
        }
        let plan = plan_arena(&requests);
        let region = |b: usize| Region {
            offset: plan.offsets[b],
            words_per_row: words_for(widths[b]),
            width: widths[b],
        };

        let layers = fused.network().layers();
        let steps: Vec<Step> = fused
            .steps()
            .iter()
            .map(|step| match step.op {
                FusedOp::Pack => Step::Pack {
                    dst: region(step.dst),
                },
                FusedOp::FusedHidden { layer } => Step::FusedHidden {
                    layer,
                    src: region(step.src),
                    dst: region(step.dst),
                    thresholds: layers[layer].folded_thresholds(),
                    weights: InterleavedRows::from_matrix(layers[layer].weights()),
                },
                FusedOp::FusedLogits { layer } => {
                    let (scale, shift) = layers[layer].affine();
                    Step::FusedLogits {
                        layer,
                        src: region(step.src),
                        scale: scale.to_vec(),
                        shift: shift.to_vec(),
                        weights: InterleavedRows::from_matrix(layers[layer].weights()),
                    }
                }
            })
            .collect();
        let counts_len = steps
            .iter()
            .map(|s| match s {
                Step::Pack { .. } => 0,
                Step::FusedHidden { weights, .. } | Step::FusedLogits { weights, .. } => {
                    weights.padded_rows()
                }
            })
            .max()
            .unwrap_or(0);

        Self {
            steps,
            arena_words: plan.total_words,
            naive_words: requests.iter().map(|r| r.words).sum(),
            counts_len,
            max_batch,
            in_features: network.in_features(),
            out_features: network.out_features(),
            network: fused.network().clone(),
        }
    }

    /// Allocates fresh, zeroed replay storage (arena + popcount scratch)
    /// sized for this plan.
    pub fn buffers(&self) -> PlanBuffers {
        PlanBuffers {
            arena: vec![0; self.arena_words],
            counts: vec![0; self.counts_len],
        }
    }

    /// Compiled steps in execution order (engine-backed replays walk these
    /// directly).
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// The network the plan was compiled from.
    pub fn network(&self) -> &BinaryNetwork {
        &self.network
    }

    /// Planned arena size in words (peak plan memory).
    pub fn arena_words(&self) -> usize {
        self.arena_words
    }

    /// What naive per-op allocation of every packed buffer would cost, in
    /// words — the planner's upper bound.
    pub fn naive_words(&self) -> usize {
        self.naive_words
    }

    /// Largest batch the plan can replay.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Input feature width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output classes.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Replays the plan over a batch of float feature rows, writing
    /// `rows.len() × out_features` logits row-major into `out`.
    ///
    /// Allocation-free: everything lives in `buffers` and `out`
    /// (`analysis.toml` zero-alloc zone). Bitwise-equal to
    /// [`BinaryNetwork::logits_batch`] on the same rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len() > max_batch`, a row's width differs from
    /// `in_features`, `out` is shorter than `rows.len() * out_features`, or
    /// `buffers` was built for a smaller plan.
    pub fn replay_rows(&self, rows: &[&[f32]], buffers: &mut PlanBuffers, out: &mut [f32]) {
        let n = rows.len();
        assert!(n <= self.max_batch, "batch exceeds plan capacity");
        assert!(
            out.len() >= n * self.out_features,
            "output slice too short for batch"
        );
        assert!(
            buffers.arena.len() >= self.arena_words,
            "buffers built for a smaller plan"
        );
        assert!(
            buffers.counts.len() >= self.counts_len,
            "popcount scratch built for a smaller plan"
        );
        let PlanBuffers { arena, counts } = buffers;
        for step in &self.steps {
            match step {
                Step::Pack { dst } => pack_rows(rows, dst, arena),
                Step::FusedHidden {
                    src,
                    dst,
                    thresholds,
                    weights,
                    ..
                } => fused_hidden(weights, src, dst, thresholds, n, arena, counts),
                Step::FusedLogits {
                    src,
                    scale,
                    shift,
                    weights,
                    ..
                } => fused_logits(weights, src, scale, shift, n, arena, counts, out),
            }
        }
    }
}

/// Packs each float row's sign bits into its row of `dst`, via the same
/// runtime-dispatched kernel [`rbnn_tensor::BitMatrix::from_sign_rows`]
/// uses — bit-identical words.
///
/// # Panics
///
/// Panics if a row's length differs from `dst.width`.
pub fn pack_rows(rows: &[&[f32]], dst: &Region, arena: &mut [u64]) {
    for (i, row) in rows.iter().enumerate() {
        assert!(row.len() == dst.width, "row width mismatch");
        pack_signs_into(row, dst.row_mut(arena, i));
    }
}

/// Fused hidden-layer kernel: for each sample row, one batched
/// XNOR-popcount sweep over the interleaved weight rows (a single kernel
/// dispatch per sample), then the folded thresholds fire and the sign bits
/// accumulate in a word register flushed straight into `dst`. Counts pass
/// through the plan's fixed scratch — never a per-request allocation, never
/// a materialized `[batch, out]` matrix.
///
/// The threshold comparison is written out against [`FoldedThreshold`]'s
/// public fields rather than through `fire` so it inlines into the packing
/// loop; the expression is identical.
fn fused_hidden(
    weights: &InterleavedRows,
    src: &Region,
    dst: &Region,
    thresholds: &[FoldedThreshold],
    n: usize,
    arena: &mut [u64],
    counts: &mut [u32],
) {
    let (src_words, dst_words) = split_src_dst(arena, src, dst, n);
    for i in 0..n {
        let x = &src_words[i * src.words_per_row..(i + 1) * src.words_per_row];
        weights.popcounts_into(x, counts);
        let drow = &mut dst_words[i * dst.words_per_row..(i + 1) * dst.words_per_row];
        for (w, word) in drow.iter_mut().enumerate() {
            let base = w * WORD_BITS;
            let m = WORD_BITS.min(dst.width - base);
            let mut acc = 0u64;
            for b in 0..m {
                let r = base + b;
                let th = thresholds[r];
                let fire = (counts[r] as i64 >= th.min_popcount) ^ th.negate;
                acc |= (fire as u64) << b;
            }
            *word = acc;
        }
    }
}

/// Fused output-layer kernel: one batched XNOR-popcount sweep of the class
/// rows per sample, then `scale[r] · (2p − n_in) + shift[r]` — the exact
/// float expression, evaluation order included, of the legacy
/// `forward_affine_batch`, so logits match it bit for bit.
#[allow(clippy::too_many_arguments)]
fn fused_logits(
    weights: &InterleavedRows,
    src: &Region,
    scale: &[f32],
    shift: &[f32],
    n: usize,
    arena: &[u64],
    counts: &mut [u32],
    out: &mut [f32],
) {
    let classes = scale.len();
    let n_in = src.width as f32;
    for i in 0..n {
        let x = src.row(arena, i);
        weights.popcounts_into(x, counts);
        let orow = &mut out[i * classes..(i + 1) * classes];
        for (r, o) in orow.iter_mut().enumerate() {
            *o = scale[r] * (2.0 * counts[r] as f32 - n_in) + shift[r];
        }
    }
}

/// Fires `thresholds` against pre-sensed popcounts and packs the verdict
/// bits into one destination row, overwriting every word — the
/// threshold+pack half of the fused hidden kernel, exposed for engines
/// (e.g. the RRAM tile simulator) that produce popcounts externally.
///
/// Bit layout matches the fused hidden kernel's output exactly.
///
/// # Panics
///
/// Panics if `counts` is shorter than `thresholds` or `dst` does not hold
/// exactly `thresholds.len().div_ceil(64)` words.
pub fn threshold_pack_row(thresholds: &[FoldedThreshold], counts: &[u32], dst: &mut [u64]) {
    assert!(
        counts.len() >= thresholds.len(),
        "counts shorter than layer"
    );
    assert!(
        dst.len() == words_for(thresholds.len()),
        "destination row width mismatch"
    );
    for (w, word) in dst.iter_mut().enumerate() {
        let base = w * WORD_BITS;
        let m = WORD_BITS.min(thresholds.len() - base);
        let mut acc = 0u64;
        for b in 0..m {
            acc |= (thresholds[base + b].fire(counts[base + b]) as u64) << b;
        }
        *word = acc;
    }
}

/// Splits the arena into this step's source (shared) and destination
/// (mutable) rows. The planner guarantees the regions are disjoint — a
/// reader and writer of the same step are simultaneously live — so the
/// split is a pure reborrow.
fn split_src_dst<'a>(
    arena: &'a mut [u64],
    src: &Region,
    dst: &Region,
    n: usize,
) -> (&'a [u64], &'a mut [u64]) {
    let s_len = n * src.words_per_row;
    let d_len = n * dst.words_per_row;
    if src.offset + s_len <= dst.offset {
        let (lo, hi) = arena.split_at_mut(dst.offset);
        (&lo[src.offset..src.offset + s_len], &mut hi[..d_len])
    } else {
        assert!(
            dst.offset + d_len <= src.offset,
            "planner produced aliasing src/dst regions"
        );
        let (lo, hi) = arena.split_at_mut(src.offset);
        (&hi[..s_len], &mut lo[dst.offset..dst.offset + d_len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rbnn_binary::BinaryDense;
    use rbnn_tensor::BitMatrix;

    fn random_net(dims: &[usize], seed: u64) -> BinaryNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| {
                let (inp, out) = (w[0], w[1]);
                let signs: Vec<f32> = (0..inp * out)
                    .map(|_| if rng.gen_range(0..2) == 0 { -1.0 } else { 1.0 })
                    .collect();
                // Mixed-sign scales exercise the negated threshold fold.
                let scale: Vec<f32> = (0..out)
                    .map(|_| (rng.gen_range(1..100) as f32 / 50.0) - 1.0)
                    .collect();
                let shift: Vec<f32> = (0..out)
                    .map(|_| (rng.gen_range(0..100) as f32 / 10.0) - 5.0)
                    .collect();
                BinaryDense::new(BitMatrix::from_signs(&signs, out, inp), scale, shift)
            })
            .collect();
        BinaryNetwork::new(layers)
    }

    fn random_rows(n: usize, width: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..width)
                    .map(|_| (rng.gen_range(0..200) as f32 / 10.0) - 10.0)
                    .collect()
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn assert_parity(dims: &[usize], n: usize, seed: u64) {
        let net = random_net(dims, seed);
        let rows = random_rows(n, dims[0], seed ^ 0xFEED);
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let legacy = net.logits_batch_rows(&refs);

        let plan = ExecPlan::compile(&net, n.max(1));
        let mut buffers = plan.buffers();
        let mut out = vec![0.0f32; n * net.out_features()];
        plan.replay_rows(&refs, &mut buffers, &mut out);
        assert_eq!(
            bits(&out),
            bits(legacy.as_slice()),
            "plan replay diverged from legacy path on dims {dims:?}"
        );
    }

    #[test]
    fn replay_is_bitwise_equal_to_legacy_at_every_edge_width() {
        for (i, dims) in [
            vec![63, 64, 2],
            vec![64, 65, 127, 3],
            vec![65, 63, 64, 127, 128, 5],
            vec![128, 127, 4],
            vec![33, 17, 2],
            vec![1, 1, 2],
        ]
        .iter()
        .enumerate()
        {
            assert_parity(dims, 7, 0xA11CE + i as u64);
        }
    }

    #[test]
    fn replay_is_bitwise_equal_in_forced_scalar_mode() {
        rbnn_tensor::set_forced_scalar(true);
        let result = std::panic::catch_unwind(|| {
            assert_parity(&[65, 127, 64, 3], 9, 0x5CA1A);
        });
        rbnn_tensor::clear_forced_scalar();
        if let Err(e) = result {
            std::panic::resume_unwind(e);
        }
    }

    #[test]
    fn smaller_batches_replay_against_a_larger_plan() {
        let net = random_net(&[65, 64, 3], 0xB00);
        let plan = ExecPlan::compile(&net, 32);
        let mut buffers = plan.buffers();
        for n in [1usize, 5, 31, 32] {
            let rows = random_rows(n, 65, n as u64);
            let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
            let mut out = vec![0.0f32; n * 3];
            plan.replay_rows(&refs, &mut buffers, &mut out);
            let legacy = net.logits_batch_rows(&refs);
            assert_eq!(bits(&out), bits(legacy.as_slice()), "batch {n}");
        }
    }

    #[test]
    fn two_compiles_of_the_same_model_are_byte_identical() {
        let net = random_net(&[127, 65, 63, 4], 0xD0D0);
        let a = ExecPlan::compile(&net, 16);
        let b = ExecPlan::compile(&net, 16);
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.arena_words(), b.arena_words());
        assert_eq!(format!("{:?}", a.steps()), format!("{:?}", b.steps()));
    }

    #[test]
    fn replay_reusing_dirty_buffers_is_deterministic() {
        let net = random_net(&[64, 63, 2], 0xCAFE);
        let plan = ExecPlan::compile(&net, 8);
        let mut buffers = plan.buffers();
        let rows = random_rows(8, 64, 1);
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let mut first = vec![0.0f32; 8 * 2];
        plan.replay_rows(&refs, &mut buffers, &mut first);
        // Second replay over the now-dirty arena — and over different rows
        // in between — must give the same bits.
        let other = random_rows(3, 64, 2);
        let other_refs: Vec<&[f32]> = other.iter().map(|r| r.as_slice()).collect();
        let mut scratch = vec![0.0f32; 3 * 2];
        plan.replay_rows(&other_refs, &mut buffers, &mut scratch);
        let mut second = vec![0.0f32; 8 * 2];
        plan.replay_rows(&refs, &mut buffers, &mut second);
        assert_eq!(bits(&first), bits(&second));
    }

    #[test]
    fn deep_chains_reuse_arena_storage() {
        let net = random_net(&[128, 128, 128, 128, 128, 2], 0xFADE);
        let plan = ExecPlan::compile(&net, 64);
        // Five packed buffers, but only two are ever live at once.
        assert!(plan.arena_words() < plan.naive_words());
        assert_eq!(plan.arena_words(), 2 * 64 * 2);
    }

    #[test]
    fn threshold_pack_row_matches_the_fused_kernel_layout() {
        let net = random_net(&[64, 65, 2], 0x7777);
        let layer = &net.layers()[0];
        let thresholds = layer.folded_thresholds();
        let rows = random_rows(1, 64, 9);
        let x = rbnn_tensor::BitVec::from_signs(&rows[0]);
        let counts: Vec<u32> = layer.popcounts(&x);
        let mut packed = vec![0u64; 2];
        threshold_pack_row(&thresholds, &counts, &mut packed);
        let expected = layer.forward_sign(&x);
        assert_eq!(packed, expected.as_words());
    }
}
