//! Fusion: collapse unfused stage chains into single packed-word kernels.
//!
//! The pass pattern-matches runs of nodes in the lowered graph:
//!
//! * `XnorPopcount → Threshold → SignPack` becomes one
//!   [`FusedOp::FusedHidden`] — per output word, popcounts are compared
//!   against the folded thresholds and the verdict bits accumulated in a
//!   register, so the `Counts` and `Flags` values vanish entirely;
//! * `XnorPopcount → Affine` becomes one [`FusedOp::FusedLogits`] — each
//!   popcount feeds the affine read-out directly;
//! * `PackInput` stays as [`FusedOp::Pack`] (it is already a single
//!   dispatched kernel writing packed words).
//!
//! After fusion the only materialized values are bit-packed activation
//! matrices — exactly the operands the paper's in-memory arrays hold — and
//! those are what the lifetime planner ([`crate::plan_arena`]) assigns
//! arena storage to.

use crate::graph::{Op, OpGraph, ValueKind};
use rbnn_binary::BinaryNetwork;

/// A fused kernel. `layer` indexes [`BinaryNetwork::layers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedOp {
    /// Binarize + pack a float input row into arena words.
    Pack,
    /// XNOR-popcount → folded threshold → sign-pack, one pass, no
    /// materialized counts or flags.
    FusedHidden {
        /// Layer index.
        layer: usize,
    },
    /// XNOR-popcount → affine logits, one pass.
    FusedLogits {
        /// Layer index.
        layer: usize,
    },
}

/// One fused step: consumes bit buffer `src` and defines `dst`.
///
/// Buffer indices refer to [`FusedGraph::buffer_widths`]; the float input
/// and the float logits live outside the arena (caller-provided), so
/// `Pack` has no meaningful `src` (it is `usize::MAX`) and `FusedLogits`
/// no meaningful `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedStep {
    /// The fused kernel.
    pub op: FusedOp,
    /// Consumed bit-buffer index (`usize::MAX` for `Pack`).
    pub src: usize,
    /// Defined bit-buffer index (`usize::MAX` for `FusedLogits`).
    pub dst: usize,
}

/// The fused graph: steps in execution order plus the per-sample bit width
/// of every surviving buffer.
#[derive(Debug, Clone)]
pub struct FusedGraph {
    network: BinaryNetwork,
    steps: Vec<FusedStep>,
    buffer_widths: Vec<usize>,
}

impl FusedGraph {
    /// The network the fused steps read weights/thresholds from.
    pub fn network(&self) -> &BinaryNetwork {
        &self.network
    }

    /// Fused steps in execution order.
    pub fn steps(&self) -> &[FusedStep] {
        &self.steps
    }

    /// Per-sample bit width of each surviving packed buffer.
    pub fn buffer_widths(&self) -> &[usize] {
        &self.buffer_widths
    }
}

/// Runs the fusion pass over a lowered graph.
///
/// # Panics
///
/// Panics if the graph is not a chain of the patterns lowering emits —
/// fusion is total over [`crate::lower`]'s output by construction, and a
/// shape it cannot fuse is a lowering bug, not an input condition.
pub fn fuse(graph: &OpGraph) -> FusedGraph {
    let nodes = graph.nodes();
    let mut steps = Vec::new();
    let mut buffer_widths = Vec::new();
    let mut i = 0;
    // Index of the bit buffer currently holding the live activation.
    let mut cur = usize::MAX;
    while i < nodes.len() {
        match nodes[i].op {
            Op::PackInput { width } => {
                buffer_widths.push(width);
                cur = buffer_widths.len() - 1;
                steps.push(FusedStep {
                    op: FusedOp::Pack,
                    src: usize::MAX,
                    dst: cur,
                });
                i += 1;
            }
            Op::XnorPopcount { layer } => {
                let counts = nodes[i].output;
                assert_eq!(graph.values()[counts].kind, ValueKind::Counts);
                match nodes.get(i + 1).map(|n| n.op) {
                    Some(Op::Threshold { layer: tl }) => {
                        assert_eq!(tl, layer, "threshold must follow its own popcount");
                        let sign = nodes
                            .get(i + 2)
                            .unwrap_or_else(|| panic!("threshold without sign-pack"));
                        assert!(
                            matches!(sign.op, Op::SignPack { layer: sl } if sl == layer),
                            "sign-pack must close the hidden chain"
                        );
                        buffer_widths.push(graph.values()[sign.output].width);
                        let dst = buffer_widths.len() - 1;
                        steps.push(FusedStep {
                            op: FusedOp::FusedHidden { layer },
                            src: cur,
                            dst,
                        });
                        cur = dst;
                        i += 3;
                    }
                    Some(Op::Affine { layer: al }) => {
                        assert_eq!(al, layer, "affine must follow its own popcount");
                        steps.push(FusedStep {
                            op: FusedOp::FusedLogits { layer },
                            src: cur,
                            dst: usize::MAX,
                        });
                        i += 2;
                    }
                    other => panic!("unfusable op after popcount: {other:?}"),
                }
            }
            other => panic!("unexpected op at fusion root: {other:?}"),
        }
    }
    FusedGraph {
        network: graph.network().clone(),
        steps,
        buffer_widths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::lower;
    use rbnn_binary::BinaryDense;
    use rbnn_tensor::BitMatrix;

    fn net(dims: &[usize]) -> BinaryNetwork {
        let layers = dims
            .windows(2)
            .map(|w| {
                let (inp, out) = (w[0], w[1]);
                let signs: Vec<f32> = (0..inp * out)
                    .map(|i| if i % 5 == 0 { -1.0 } else { 1.0 })
                    .collect();
                BinaryDense::new(
                    BitMatrix::from_signs(&signs, out, inp),
                    vec![1.0; out],
                    vec![0.5; out],
                )
            })
            .collect();
        BinaryNetwork::new(layers)
    }

    #[test]
    fn fusion_collapses_every_hidden_chain() {
        // 3 hidden layers + logits: 1 + 3·3 + 2 = 12 unfused nodes…
        let g = lower(&net(&[65, 63, 64, 127, 5]));
        assert_eq!(g.nodes().len(), 12);
        // …fuse to 1 + 3 + 1 = 5 steps over 4 bit buffers.
        let f = fuse(&g);
        let ops: Vec<FusedOp> = f.steps().iter().map(|s| s.op).collect();
        assert_eq!(
            ops,
            vec![
                FusedOp::Pack,
                FusedOp::FusedHidden { layer: 0 },
                FusedOp::FusedHidden { layer: 1 },
                FusedOp::FusedHidden { layer: 2 },
                FusedOp::FusedLogits { layer: 3 },
            ]
        );
        assert_eq!(f.buffer_widths(), &[65, 63, 64, 127]);
        // Each step consumes the buffer the previous step defined.
        assert_eq!(f.steps()[1].src, f.steps()[0].dst);
        assert_eq!(f.steps()[4].src, f.steps()[3].dst);
    }

    #[test]
    fn no_counts_or_flags_survive_fusion() {
        let g = lower(&net(&[128, 64, 2]));
        let f = fuse(&g);
        // Surviving buffers are exactly the packed activations; the
        // Counts/Flags values of the unfused graph have no storage.
        assert_eq!(f.buffer_widths().len(), 2);
        assert_eq!(f.steps().len(), 3);
    }
}
