//! # rbnn-rram
//!
//! Behavioural simulator of the paper's hybrid CMOS / HfO₂ resistive-memory
//! substrate — the hardware half of the
//! [rram-bnn](https://arxiv.org/abs/2006.11595) reproduction:
//!
//! * [`RramCell`] / [`DeviceParams`] — log-normal LRS/HRS statistics with
//!   cycling-induced wear and weak-programming tail events;
//! * [`Pcsa`] — the precharge sense amplifier of Fig 3, plain and
//!   XNOR-augmented;
//! * [`Synapse2T2R`] — differential weight storage (+1 = LRS/HRS);
//! * [`RramArray`] — the 32×32 test-chip array of Fig 2 with decoders,
//!   per-column PCSAs and operation counters;
//! * [`endurance`] — the Fig 4 experiment: 1T1R vs 2T2R bit-error rate over
//!   hundreds of millions of cycles, Monte-Carlo and closed-form;
//! * [`DenseEngine`] / [`NetworkEngine`] — the Fig 5 architecture: tiled
//!   arrays + popcount logic executing whole binarized classifiers in
//!   memory;
//! * [`faults`] — i.i.d. weight bit-flip injection for accuracy-vs-BER
//!   sweeps (the ECC-less operation argument);
//! * [`energy`] — first-order energy comparison against digital int8/fp32
//!   implementations.
//!
//! Everything physical is Monte-Carlo over explicit, documented statistical
//! models; see DESIGN.md §2 for why this preserves the paper's claims.
//!
//! ```
//! use rbnn_rram::{DeviceParams, Pcsa, Synapse2T2R};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let params = DeviceParams::hfo2_default();
//! let mut rng = StdRng::seed_from_u64(1);
//! let synapse = Synapse2T2R::new(true, &params, &mut rng);
//! let pcsa = Pcsa::ideal();
//! assert!(synapse.read(&pcsa, &params, &mut rng)); // reads back +1
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod device;
pub mod endurance;
pub mod energy;
mod engine;
pub mod faults;
mod graph_exec;
mod pcsa;
pub mod stats;
mod synapse;
pub mod verify;

pub use array::{ArrayStats, RramArray};
pub use device::{DeviceParams, ResistiveState, RramCell};
pub use endurance::{EnduranceConfig, EndurancePoint};
pub use engine::{DenseEngine, EngineConfig, NetworkEngine};
pub use pcsa::{Pcsa, PcsaParams};
pub use synapse::Synapse2T2R;
pub use verify::{VerifyConfig, VerifyOutcome};
