//! The in-memory BNN layer engine of Fig 5: RRAM arrays + XNOR-PCSAs +
//! shared popcount/threshold logic composing fully-connected layers.
//!
//! A weight matrix larger than one physical array is tiled: row tiles split
//! the output neurons across arrays, column tiles split each neuron's
//! fan-in, and the shared logic sums the per-tile popcounts before the
//! threshold — exactly the "basic architecture for implementing fully
//! connected BNN layer from in-memory computing basic blocks" of the paper.

use std::sync::{Arc, OnceLock};

use rbnn_binary::{BinaryDense, BinaryNetwork};
use rbnn_telemetry::{Counter, FloatCounter, Gauge};
use rbnn_tensor::{par, BitVec, Tensor};

use crate::energy::{sense_energy_nj, EnergyParams};
use crate::{ArrayStats, DeviceParams, PcsaParams, RramArray};

/// Process-wide RRAM fabric telemetry, aggregated across every
/// [`NetworkEngine`] in the process (serving replicas, tests and benches
/// alike) — the fleet-level view of how much array activity and estimated
/// sense energy the workload is consuming.
struct FabricTelemetry {
    /// PCSA senses across all engines.
    senses: Arc<Counter>,
    /// Device-pair programming events across all engines.
    programs: Arc<Counter>,
    /// Estimated cumulative sense energy in µJ (default energy figures).
    energy_uj: Arc<FloatCounter>,
    /// Marginal-cell fraction of the most recently programmed or aged
    /// fabric (last-write-wins across engines).
    marginal_fraction: Arc<Gauge>,
    energy: EnergyParams,
}

fn fabric_telemetry() -> &'static FabricTelemetry {
    static FABRIC: OnceLock<FabricTelemetry> = OnceLock::new();
    FABRIC.get_or_init(|| {
        let reg = rbnn_telemetry::global();
        FabricTelemetry {
            senses: reg.counter(
                "rbnn_rram_senses_total",
                "",
                "PCSA sense operations across all engines.",
            ),
            programs: reg.counter(
                "rbnn_rram_programs_total",
                "",
                "Device-pair programming events across all engines.",
            ),
            energy_uj: reg.float_counter(
                "rbnn_rram_energy_uj_total",
                "",
                "Estimated cumulative PCSA sense energy (uJ, default figures).",
            ),
            marginal_fraction: reg.gauge(
                "rbnn_rram_marginal_fraction",
                "",
                "Marginal (still-Monte-Carlo) cell fraction of the last programmed/aged fabric.",
            ),
            energy: EnergyParams::default_figures(),
        }
    })
}

/// Records a batch of sense events on the fleet counters (plus their
/// estimated energy through [`sense_energy_nj`]).
pub(crate) fn record_fabric_senses(senses: u64) {
    if senses == 0 {
        return;
    }
    let t = fabric_telemetry();
    t.senses.add(senses);
    t.energy_uj.add(sense_energy_nj(senses, &t.energy) / 1e3);
}

/// Physical configuration of the array fabric.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Word lines per array (the paper's test chip: 32).
    pub array_rows: usize,
    /// Synapse columns per array (the paper's test chip: 32).
    pub array_cols: usize,
    /// Device statistics.
    pub device: DeviceParams,
    /// Sense-amplifier statistics.
    pub pcsa: PcsaParams,
    /// Master seed for device sampling.
    pub seed: u64,
}

impl EngineConfig {
    /// The paper's 1K-synapse test-chip geometry with default device/PCSA
    /// models.
    pub fn test_chip(seed: u64) -> Self {
        Self {
            array_rows: 32,
            array_cols: 32,
            device: DeviceParams::hfo2_default(),
            pcsa: PcsaParams::default_130nm(),
            seed,
        }
    }

    /// A deterministic fabric for differential testing: zero read and PCSA
    /// noise (combined sense σ = 0, so every cell is margin-gated) and
    /// tightened state spreads so a programmed pair's margin never inverts
    /// (order-inversion z ≈ 12, probability ~1e-32). Evaluation on such a
    /// fabric is bit-exact with the software XNOR/popcount path by
    /// construction, which is what makes it a usable oracle reference.
    pub fn noise_free(seed: u64) -> Self {
        let mut device = DeviceParams::hfo2_default();
        device.read_noise = 0.0;
        device.lrs_sigma = 0.18;
        device.hrs_sigma = 0.18;
        Self {
            array_rows: 32,
            array_cols: 32,
            device,
            pcsa: PcsaParams {
                offset_sigma: 0.0,
                noise_sigma: 0.0,
            },
            seed,
        }
    }
}

/// One fully-connected layer mapped onto a grid of physical arrays.
#[derive(Debug)]
pub struct DenseEngine {
    // tiles[row_tile][col_tile]
    tiles: Vec<Vec<RramArray>>,
    tile_rows: usize,
    tile_cols: usize,
    in_features: usize,
    out_features: usize,
    scale: Vec<f32>,
    shift: Vec<f32>,
    /// Thread cap for tile-parallel evaluation (0 = auto).
    threads: usize,
}

impl DenseEngine {
    /// Programs a trained [`BinaryDense`] layer into freshly instantiated
    /// arrays.
    pub fn program(layer: &BinaryDense, cfg: &EngineConfig) -> Self {
        let in_features = layer.in_features();
        let out_features = layer.out_features();
        let row_tiles = out_features.div_ceil(cfg.array_rows);
        let col_tiles = in_features.div_ceil(cfg.array_cols);
        let (scale, shift) = layer.affine();

        let mut tiles = Vec::with_capacity(row_tiles);
        let mut seed = cfg.seed;
        for rt in 0..row_tiles {
            let mut row = Vec::with_capacity(col_tiles);
            for ct in 0..col_tiles {
                seed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                let mut array = RramArray::new(
                    cfg.array_rows,
                    cfg.array_cols,
                    cfg.device.clone(),
                    cfg.pcsa.clone(),
                    seed,
                );
                let r0 = rt * cfg.array_rows;
                let c0 = ct * cfg.array_cols;
                for r in r0..(r0 + cfg.array_rows).min(out_features) {
                    for c in c0..(c0 + cfg.array_cols).min(in_features) {
                        array.program_bit(r - r0, c - c0, layer.weights().get(r, c));
                    }
                }
                row.push(array);
            }
            tiles.push(row);
        }
        Self {
            tiles,
            tile_rows: cfg.array_rows,
            tile_cols: cfg.array_cols,
            in_features,
            out_features,
            scale: scale.to_vec(),
            shift: shift.to_vec(),
            threads: 1,
        }
    }

    /// Caps the number of threads tile-parallel evaluation may use:
    /// `0` = auto (all threads [`rbnn_tensor::par::num_threads`] allows),
    /// `1` = sequential (the default — with margin-gated fresh devices the
    /// per-tile work is microseconds, so per-call scoped-thread spawn and
    /// join would dominate single-sample callers; opt in for worn devices
    /// or deep batches).
    ///
    /// Row tiles run on scoped threads with independent per-tile RNG
    /// streams (each [`RramArray`] owns its generator), so results are
    /// identical at any thread count.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.threads = threads;
    }

    /// Current tile-parallel thread cap (0 = auto, 1 = sequential).
    pub fn parallelism(&self) -> usize {
        self.threads
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output neuron count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Number of physical arrays used.
    pub fn array_count(&self) -> usize {
        self.tiles.iter().map(|r| r.len()).sum()
    }

    /// Cells across all tiles currently in the marginal (Monte-Carlo)
    /// band — the complement of the senses that short-circuit through the
    /// margin-gated fast path.
    pub fn marginal_cells(&self) -> usize {
        self.tiles
            .iter()
            .flatten()
            .map(RramArray::marginal_cells)
            .sum()
    }

    /// Expected sense flips per evaluated sample: every tile row is read
    /// once per sample, so this is the sum of
    /// [`RramArray::flip_expectation`] over all tiles. Together with a
    /// union bound ("a prediction can only deviate from the noise-free
    /// one if at least one sense flipped"), it upper-bounds the per-sample
    /// probability of disagreeing with the software path.
    pub fn expected_flips_per_sample(&self) -> f64 {
        self.tiles
            .iter()
            .flatten()
            .map(RramArray::flip_expectation)
            .sum()
    }

    /// Fast-forwards device wear across every array.
    pub fn set_cycles(&mut self, cycles: u64) {
        for row in &mut self.tiles {
            for array in row {
                array.set_cycles(cycles);
            }
        }
    }

    /// Re-programs every tile's synapses to their stored weights at the
    /// current wear level; see [`RramArray::refresh`].
    pub fn refresh(&mut self) {
        for row in &mut self.tiles {
            for array in row {
                array.refresh();
            }
        }
    }

    /// Aggregated operation counters across arrays.
    pub fn stats(&self) -> ArrayStats {
        let mut total = ArrayStats::default();
        for row in &self.tiles {
            for array in row {
                total.programs += array.stats().programs;
                total.senses += array.stats().senses;
            }
        }
        total
    }

    /// Hardware popcounts per output neuron: XNOR-senses along the word
    /// line of each tile, popcount summed by the shared logic.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_features()`.
    pub fn popcounts(&mut self, x: &BitVec) -> Vec<u32> {
        self.popcounts_batch(std::slice::from_ref(x))
            .pop()
            .expect("one sample in, one out")
    }

    /// Batched hardware popcounts: element `i` of the result is
    /// [`popcounts`](Self::popcounts) of `xs[i]`.
    ///
    /// The tile bookkeeping is amortized across the batch: the input slice
    /// feeding each column tile is cut once per sample (word-level, not
    /// bit-by-bit) and reused across every row tile. Row tiles then fan
    /// out across [`rbnn_tensor::par`] scoped threads (capped by
    /// [`set_parallelism`](Self::set_parallelism)): each worker claims
    /// whole row tiles, so every array — and its private RNG stream — is
    /// driven by exactly one thread in the same per-array operation order
    /// as sequential evaluation. Results and [`stats`](Self::stats)
    /// counters are therefore identical at any thread count; every sample
    /// still performs its own (margin-gated) PCSA senses.
    ///
    /// # Panics
    ///
    /// Panics if any input's length differs from `in_features()`.
    pub fn popcounts_batch(&mut self, xs: &[BitVec]) -> Vec<Vec<u32>> {
        for x in xs {
            assert_eq!(x.len(), self.in_features, "input width mismatch");
        }
        let col_tiles = self.tiles.first().map_or(0, Vec::len);
        // Cut each sample once per column tile; shared read-only by every
        // row-tile worker.
        let tile_inputs: Vec<Vec<BitVec>> = (0..col_tiles)
            .map(|ct| {
                let c0 = ct * self.tile_cols;
                let cols_used = (self.in_features - c0).min(self.tile_cols);
                xs.iter()
                    .map(|x| x.slice_padded(c0, cols_used, self.tile_cols))
                    .collect()
            })
            .collect();
        let (tile_rows, tile_cols) = (self.tile_rows, self.tile_cols);
        let (in_features, out_features) = (self.in_features, self.out_features);
        let n_samples = xs.len();
        let partials: Vec<Vec<Vec<u32>>> =
            par::par_map_mut(&mut self.tiles, self.threads, |rt, tile_row| {
                let r0 = rt * tile_rows;
                let rows_used = (out_features - r0).min(tile_rows);
                let mut part = vec![vec![0u32; rows_used]; n_samples];
                for (ct, array) in tile_row.iter_mut().enumerate() {
                    let cols_used = (in_features - ct * tile_cols).min(tile_cols);
                    for r in 0..rows_used {
                        for (sample, tile_input) in tile_inputs[ct].iter().enumerate() {
                            part[sample][r] +=
                                array.xnor_popcount_row_prefix(r, tile_input, cols_used);
                        }
                    }
                }
                part
            });
        let mut out = vec![vec![0u32; self.out_features]; n_samples];
        for (rt, part) in partials.iter().enumerate() {
            let r0 = rt * tile_rows;
            for (sample, rows) in part.iter().enumerate() {
                out[sample][r0..r0 + rows.len()].copy_from_slice(rows);
            }
        }
        out
    }

    /// Affine outputs (logits): `scale · (2·popcount − n) + shift`.
    pub fn forward_affine(&mut self, x: &BitVec) -> Vec<f32> {
        let counts = self.popcounts(x);
        self.affine_of(&counts)
    }

    /// Batched affine outputs, one logit vector per input.
    pub fn forward_affine_batch(&mut self, xs: &[BitVec]) -> Vec<Vec<f32>> {
        self.popcounts_batch(xs)
            .iter()
            .map(|counts| self.affine_of(counts))
            .collect()
    }

    fn affine_of(&self, counts: &[u32]) -> Vec<f32> {
        let n = self.in_features as f32;
        counts
            .iter()
            .zip(self.scale.iter().zip(&self.shift))
            .map(|(&p, (&s, &b))| s * (2.0 * p as f32 - n) + b)
            .collect()
    }

    /// Binary outputs through the folded integer thresholds.
    pub fn forward_sign(&mut self, x: &BitVec) -> BitVec {
        self.forward_affine(x).iter().map(|&v| v >= 0.0).collect()
    }

    /// Batched binary outputs.
    pub fn forward_sign_batch(&mut self, xs: &[BitVec]) -> Vec<BitVec> {
        self.forward_affine_batch(xs)
            .iter()
            .map(|row| row.iter().map(|&v| v >= 0.0).collect())
            .collect()
    }
}

/// A whole deployed classifier running in simulated RRAM.
#[derive(Debug)]
pub struct NetworkEngine {
    layers: Vec<DenseEngine>,
}

impl NetworkEngine {
    /// Programs every layer of a [`BinaryNetwork`] onto array fabric.
    pub fn program(network: &BinaryNetwork, cfg: &EngineConfig) -> Self {
        let layers = network
            .layers()
            .iter()
            .enumerate()
            .map(|(i, l)| {
                let mut layer_cfg = cfg.clone();
                layer_cfg.seed = cfg.seed.wrapping_add(1 + i as u64);
                DenseEngine::program(l, &layer_cfg)
            })
            .collect();
        let engine = Self { layers };
        if rbnn_telemetry::enabled() {
            fabric_telemetry().programs.add(engine.stats().programs);
            engine.update_marginal_gauge();
        }
        engine
    }

    /// Total programmed cells (synapses) across layers.
    pub fn cell_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.in_features() * l.out_features())
            .sum()
    }

    /// Publishes this fabric's marginal-cell fraction on the fleet gauge.
    fn update_marginal_gauge(&self) {
        let cells = self.cell_count();
        if cells > 0 {
            fabric_telemetry()
                .marginal_fraction
                .set(self.marginal_cells() as f64 / cells as f64);
        }
    }

    /// The per-layer engines.
    pub fn layers(&self) -> &[DenseEngine] {
        &self.layers
    }

    /// Mutable per-layer engines, for the op-graph plan replay
    /// (`graph_exec`): sensing mutates device state and RNG streams.
    pub(crate) fn layers_mut(&mut self) -> &mut [DenseEngine] {
        &mut self.layers
    }

    /// Total physical arrays across layers.
    pub fn array_count(&self) -> usize {
        self.layers.iter().map(|l| l.array_count()).sum()
    }

    /// Total marginal (still-Monte-Carlo) cells across layers.
    pub fn marginal_cells(&self) -> usize {
        self.layers.iter().map(DenseEngine::marginal_cells).sum()
    }

    /// Expected sense flips per classified sample across all layers; see
    /// [`DenseEngine::expected_flips_per_sample`].
    pub fn expected_flips_per_sample(&self) -> f64 {
        self.layers
            .iter()
            .map(DenseEngine::expected_flips_per_sample)
            .sum()
    }

    /// Caps tile-parallel threads on every layer (0 = auto); see
    /// [`DenseEngine::set_parallelism`].
    pub fn set_parallelism(&mut self, threads: usize) {
        for l in &mut self.layers {
            l.set_parallelism(threads);
        }
    }

    /// Fast-forwards wear on every device.
    pub fn set_cycles(&mut self, cycles: u64) {
        for l in &mut self.layers {
            l.set_cycles(cycles);
        }
        // Wear re-evaluates the margin gate, so the marginal fraction
        // shifts; refresh the fleet gauge.
        if rbnn_telemetry::enabled() {
            self.update_marginal_gauge();
        }
    }

    /// Re-programs the whole network onto the (possibly worn) fabric —
    /// the periodic weight-refresh cycle of a deployed chip. Re-realized
    /// resistances draw from the current wear level's distributions, so
    /// after [`set_cycles`](Self::set_cycles) a refresh is what actually
    /// moves cells into the marginal band (wear alone only changes the
    /// statistics of future programming events).
    pub fn refresh(&mut self) {
        for l in &mut self.layers {
            l.refresh();
        }
        if rbnn_telemetry::enabled() {
            self.update_marginal_gauge();
        }
    }

    /// Aggregated operation counters.
    pub fn stats(&self) -> ArrayStats {
        let mut total = ArrayStats::default();
        for l in &self.layers {
            let s = l.stats();
            total.programs += s.programs;
            total.senses += s.senses;
        }
        total
    }

    /// Logits for a real-valued feature vector (sign-binarized at the
    /// input interface).
    pub fn logits(&mut self, x: &[f32]) -> Vec<f32> {
        let before = rbnn_telemetry::enabled().then(|| self.stats().senses);
        let mut h = BitVec::from_signs(x);
        let n = self.layers.len();
        for l in &mut self.layers[..n - 1] {
            h = l.forward_sign(&h);
        }
        let out = self.layers[n - 1].forward_affine(&h);
        if let Some(b) = before {
            record_fabric_senses(self.stats().senses - b);
        }
        out
    }

    /// Batched logits for a `[N, in]` feature matrix: returns a
    /// `[N, out]` tensor. Each sample still performs its own Monte-Carlo
    /// PCSA senses; only the tile bookkeeping is shared (see
    /// [`DenseEngine::popcounts_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if `features` is not 2-D with the network's input width.
    pub fn logits_batch(&mut self, features: &Tensor) -> Tensor {
        assert_eq!(features.shape().ndim(), 2, "expected [N, features]");
        let n = features.dim(0);
        let f = features.dim(1);
        let xs = features.as_slice();
        let rows: Vec<&[f32]> = (0..n).map(|i| &xs[i * f..(i + 1) * f]).collect();
        self.logits_batch_rows(&rows)
    }

    /// Batched logits over separate per-sample feature slices (serving
    /// path; see [`rbnn_binary::BinaryNetwork::logits_batch_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if any slice's length differs from the network input width.
    pub fn logits_batch_rows(&mut self, rows: &[&[f32]]) -> Tensor {
        let before = rbnn_telemetry::enabled().then(|| self.stats().senses);
        let n = rows.len();
        let mut h: Vec<BitVec> = rows.iter().map(|r| BitVec::from_signs(r)).collect();
        let depth = self.layers.len();
        for l in &mut self.layers[..depth - 1] {
            h = l.forward_sign_batch(&h);
        }
        let logits = self.layers[depth - 1].forward_affine_batch(&h);
        let out = self.layers[depth - 1].out_features();
        let result = Tensor::from_vec(logits.into_iter().flatten().collect(), [n, out]);
        if let Some(b) = before {
            record_fabric_senses(self.stats().senses - b);
        }
        result
    }

    /// Batched argmax classification of a `[N, in]` feature matrix.
    pub fn classify_batch(&mut self, features: &Tensor) -> Vec<usize> {
        let logits = self.logits_batch(features);
        let out = logits.dim(1);
        logits
            .as_slice()
            .chunks_exact(out.max(1))
            .map(rbnn_tensor::argmax)
            .collect()
    }

    /// Predicted class.
    pub fn classify(&mut self, x: &[f32]) -> usize {
        rbnn_tensor::argmax(&self.logits(x))
    }

    /// Top-1 accuracy over a feature matrix `[N, in]` — the hardware
    /// counterpart of [`BinaryNetwork::accuracy`].
    pub fn accuracy(&mut self, features: &Tensor, labels: &[usize]) -> f32 {
        assert_eq!(features.dim(0), labels.len(), "label count mismatch");
        if labels.is_empty() {
            return 0.0;
        }
        let f = features.dim(1);
        let xs = features.as_slice();
        let mut hits = 0usize;
        for (i, &y) in labels.iter().enumerate() {
            if self.classify(&xs[i * f..(i + 1) * f]) == y {
                hits += 1;
            }
        }
        hits as f32 / labels.len() as f32
    }

    /// Top-1 accuracy through the batched kernels. Monte-Carlo draws occur
    /// in a different order than [`accuracy`](Self::accuracy), so results
    /// are statistically — not bit-for-bit — equivalent.
    pub fn accuracy_batch(&mut self, features: &Tensor, labels: &[usize]) -> f32 {
        assert_eq!(features.dim(0), labels.len(), "label count mismatch");
        if labels.is_empty() {
            return 0.0;
        }
        let preds = self.classify_batch(features);
        let hits = preds.iter().zip(labels).filter(|(p, y)| p == y).count();
        hits as f32 / labels.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rbnn_tensor::BitMatrix;

    /// Independently seeded RNG stream for engine-level tests.
    fn engine_rng(seed: u64) -> impl Rng {
        use rand::SeedableRng;
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn random_network(rng: &mut impl Rng) -> BinaryNetwork {
        let mk = |out: usize, inp: usize, rng: &mut dyn FnMut() -> bool| {
            let w: Vec<f32> = (0..out * inp)
                .map(|_| if rng() { 1.0 } else { -1.0 })
                .collect();
            BinaryDense::new(
                BitMatrix::from_signs(&w, out, inp),
                vec![1.0; out],
                (0..out)
                    .map(|i| (i as f32 - out as f32 / 2.0) * 0.1)
                    .collect(),
            )
        };
        let mut flip = || rng.gen::<bool>();
        let l1 = mk(40, 70, &mut flip); // forces 2×3 tiling on 32×32 arrays
        let l2 = mk(4, 40, &mut flip);
        BinaryNetwork::new(vec![l1, l2])
    }

    #[test]
    fn fresh_engine_matches_software_network_exactly() {
        let mut rng = engine_rng(0);
        let net = random_network(&mut rng);
        let cfg = EngineConfig::test_chip(7);
        let mut engine = NetworkEngine::program(&net, &cfg);
        for _ in 0..30 {
            let x: Vec<f32> = (0..70)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let hw = engine.logits(&x);
            let sw = net.logits(&x);
            for (h, s) in hw.iter().zip(&sw) {
                assert!((h - s).abs() < 1e-3, "hw {h} vs sw {s}");
            }
            assert_eq!(engine.classify(&x), net.classify(&x));
        }
    }

    #[test]
    fn tiling_geometry() {
        let mut rng = engine_rng(1);
        let net = random_network(&mut rng);
        let cfg = EngineConfig::test_chip(8);
        let engine = NetworkEngine::program(&net, &cfg);
        // Layer 1: 40×70 → ceil(40/32)=2 row tiles × ceil(70/32)=3 col
        // tiles = 6 arrays; layer 2: 4×40 → 1×2 = 2 arrays.
        assert_eq!(engine.layers()[0].array_count(), 6);
        assert_eq!(engine.layers()[1].array_count(), 2);
        assert_eq!(engine.array_count(), 8);
    }

    #[test]
    fn stats_accumulate_per_inference() {
        let mut rng = engine_rng(2);
        let net = random_network(&mut rng);
        let cfg = EngineConfig::test_chip(9);
        let mut engine = NetworkEngine::program(&net, &cfg);
        let programs_after_mapping = engine.stats().programs;
        assert_eq!(programs_after_mapping, 40 * 70 + 4 * 40);
        let x = vec![1.0f32; 70];
        let _ = engine.logits(&x);
        assert!(engine.stats().senses > 0);
    }

    #[test]
    fn fabric_telemetry_tracks_programs_senses_and_energy() {
        let mut rng = engine_rng(77);
        let net = random_network(&mut rng);
        let t = super::fabric_telemetry();
        let programs_before = t.programs.get();
        let senses_before = t.senses.get();
        let energy_before = t.energy_uj.get();
        let mut engine = NetworkEngine::program(&net, &EngineConfig::test_chip(70));
        // Programming registered every device-pair write on the fleet
        // counter (other tests run concurrently, so assert deltas as
        // lower bounds).
        assert!(t.programs.get() >= programs_before + (40 * 70 + 4 * 40) as u64);
        let frac = t.marginal_fraction.get();
        assert!((0.0..=1.0).contains(&frac), "fraction {frac}");
        let local_before = engine.stats().senses;
        let x = vec![1.0f32; 70];
        let _ = engine.logits(&x);
        let local_delta = engine.stats().senses - local_before;
        assert!(local_delta > 0);
        assert!(t.senses.get() >= senses_before + local_delta);
        // Energy follows the senses through the default figures.
        let expected_uj = crate::energy::sense_energy_nj(
            local_delta,
            &crate::energy::EnergyParams::default_figures(),
        ) / 1e3;
        assert!(t.energy_uj.get() >= energy_before + expected_uj - 1e-12);
        assert_eq!(engine.cell_count(), 40 * 70 + 4 * 40);
    }

    #[test]
    fn batched_engine_matches_software_network_exactly_when_fresh() {
        // On fresh devices every sense resolves correctly, so the batched
        // path must agree bit-for-bit with the software network (and hence
        // with the sequential engine path) despite different RNG draw
        // order.
        let mut rng = engine_rng(4);
        let net = random_network(&mut rng);
        let cfg = EngineConfig::test_chip(11);
        let mut engine = NetworkEngine::program(&net, &cfg);
        for n in [0usize, 1, 5, 33] {
            let xs: Vec<f32> = (0..n * 70)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            let features = Tensor::from_vec(xs.clone(), [n, 70]);
            let hw = engine.logits_batch(&features);
            assert_eq!(hw.dims(), [n, 4]);
            let sw = net.logits_batch(&features);
            for (h, s) in hw.as_slice().iter().zip(sw.as_slice()) {
                assert!((h - s).abs() < 1e-3, "batch {n}: hw {h} vs sw {s}");
            }
            assert_eq!(
                engine.classify_batch(&features),
                net.classify_batch(&features)
            );
        }
    }

    #[test]
    fn batched_senses_match_sequential_count() {
        // The batched path must fire exactly the same number of PCSA
        // senses as per-sample evaluation: batching amortizes bookkeeping,
        // not physics.
        let mut rng = engine_rng(5);
        let net = random_network(&mut rng);
        let mut seq = NetworkEngine::program(&net, &EngineConfig::test_chip(12));
        let mut bat = NetworkEngine::program(&net, &EngineConfig::test_chip(12));
        let n = 7;
        let xs: Vec<f32> = (0..n * 70)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let features = Tensor::from_vec(xs.clone(), [n, 70]);
        for i in 0..n {
            let _ = seq.logits(&xs[i * 70..(i + 1) * 70]);
        }
        let _ = bat.logits_batch(&features);
        assert_eq!(seq.stats().senses, bat.stats().senses);
        assert_eq!(seq.stats().programs, bat.stats().programs);
    }

    #[test]
    fn tile_parallel_results_are_thread_count_invariant() {
        // Each array owns its RNG stream and is driven by exactly one
        // worker, so the fan-out must be bit-identical at any thread cap —
        // even under wear, where marginal cells actively draw noise.
        let mut rng = engine_rng(7);
        let net = random_network(&mut rng);
        let xs: Vec<f32> = (0..9 * 70)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
            .collect();
        let features = Tensor::from_vec(xs, [9, 70]);
        // Heavy read noise puts most cells inside the ±6σ marginal band,
        // so the workers actively consume their per-tile RNG streams.
        let mut cfg = EngineConfig::test_chip(14);
        cfg.device.read_noise = 0.5;
        let run = |threads: usize| {
            let mut engine = NetworkEngine::program(&net, &cfg);
            assert!(engine.marginal_cells() > 100, "test needs marginal cells");
            engine.set_parallelism(threads);
            for l in engine.layers() {
                assert_eq!(l.parallelism(), threads, "cap must propagate");
            }
            engine.logits_batch(&features)
        };
        let serial = run(1);
        for threads in [2usize, 0] {
            let parallel = run(threads);
            assert_eq!(
                serial.as_slice(),
                parallel.as_slice(),
                "threads={threads} diverged from serial"
            );
        }
    }

    #[test]
    fn fresh_engine_senses_without_marginal_cells() {
        // Margin gating on fresh devices: (essentially) every cell is
        // deterministic, which is what makes RRAM serving fast.
        let mut rng = engine_rng(8);
        let net = random_network(&mut rng);
        let engine = NetworkEngine::program(&net, &EngineConfig::test_chip(15));
        let total: usize = 40 * 70 + 4 * 40;
        let marginal = engine.marginal_cells();
        assert!(
            (marginal as f64) < 0.01 * total as f64,
            "fresh engine should be ≫99% gated: {marginal}/{total} marginal"
        );
    }

    #[test]
    fn worn_engine_batched_accuracy_statistically_consistent() {
        // Under wear the batched and sequential paths draw different
        // Monte-Carlo streams; their accuracies must still agree within a
        // loose statistical band.
        let mut rng = engine_rng(6);
        let net = random_network(&mut rng);
        let mut engine = NetworkEngine::program(&net, &EngineConfig::test_chip(13));
        let n = 60;
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..70)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            labels.push(net.classify(&x));
            xs.extend_from_slice(&x);
        }
        let features = Tensor::from_vec(xs, [n, 70]);
        engine.set_cycles(500_000_000);
        let seq = engine.accuracy(&features, &labels);
        let bat = engine.accuracy_batch(&features, &labels);
        assert!(
            (seq - bat).abs() < 0.15,
            "sequential {seq} vs batched {bat} drifted beyond statistical band"
        );
    }

    #[test]
    fn worn_engine_accuracy_degrades_gracefully() {
        // At 7e8 cycles the 2T2R BER is ~1e-3; a 2-layer network on a
        // linearly separable task should still classify mostly correctly.
        let mut rng = engine_rng(3);
        let net = random_network(&mut rng);
        let cfg = EngineConfig::test_chip(10);
        let mut engine = NetworkEngine::program(&net, &cfg);

        // Reference labels from the software network.
        let n = 40;
        let mut xs = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..70)
                .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                .collect();
            labels.push(net.classify(&x));
            xs.extend_from_slice(&x);
        }
        let features = Tensor::from_vec(xs, [n, 70]);
        let fresh_acc = engine.accuracy(&features, &labels);
        assert!(
            fresh_acc > 0.99,
            "fresh engine should agree with software: {fresh_acc}"
        );

        engine.set_cycles(700_000_000);
        let worn_acc = engine.accuracy(&features, &labels);
        // Graceful: still far above chance for 4 classes.
        assert!(worn_acc > 0.5, "worn accuracy collapsed: {worn_acc}");
    }
}
