//! The 2T2R memory array with word/bit-line addressing and XNOR-PCSA
//! column sensing (Fig 2(a) of the paper: 32×32 synapses = 2K devices on
//! the fabricated die).
//!
//! # Margin-gated sensing
//!
//! A naive Monte-Carlo sense draws three Gaussians per column read (read
//! noise on each device plus PCSA comparison noise) — ~200k fresh
//! transforms per classifier inference, which made the RRAM backend four
//! orders of magnitude slower than the software XNOR path it models. But
//! the sense decision is just `sign(margin + noise)` where
//! `margin = ln R_BLb − ln R_BL + offset` is fixed between programming
//! events and `noise` is a single zero-mean Gaussian whose σ combines the
//! three per-read terms in quadrature. Following the bit-error-tolerance
//! analysis of Hirtzlin et al. (arXiv:1904.03652), outcomes are
//! deterministic except in a narrow resistance margin: whenever
//! `|margin| ≥ 6σ` the flip probability is below 1e-9 — unobservable at
//! any simulation scale — so the array caches a per-cell verdict at
//! program time. Deterministic cells sense from a cached bit-packed row
//! (word-level XNOR/popcount, no RNG); marginal cells draw one combined
//! Gaussian from a cached-pair Box–Muller sampler. On fresh devices
//! essentially every cell is deterministic; under wear the marginal set
//! grows and the statistics remain those of the original three-draw
//! sampler (same decision distribution, verified against the closed-form
//! endurance model).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rbnn_tensor::{BitMatrix, BitVec};

use crate::{stats, DeviceParams, Pcsa, PcsaParams, Synapse2T2R};

/// Deterministic-verdict threshold in combined-noise σ units: a cell whose
/// sense margin clears this many σ flips with probability < 1e-9 per read
/// and skips RNG entirely.
const DETERMINISTIC_Z: f64 = 6.0;

/// Running operation counters of an array (feed the energy model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Device-pair programming events.
    pub programs: u64,
    /// PCSA sense operations (one per column per row read).
    pub senses: u64,
}

/// A cell whose sense margin is inside the ±6σ band: its reads stay
/// Monte-Carlo, from the cached margin and one combined Gaussian draw.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MarginalCell {
    col: usize,
    margin: f64,
}

/// A rows × cols array of 2T2R synapses with one PCSA per column.
///
/// Word lines select a row; all columns are sensed in parallel, optionally
/// with per-column XNOR inputs (the architecture of Fig 5 builds
/// fully-connected BNN layers from this primitive plus popcount logic).
#[derive(Debug)]
pub struct RramArray {
    rows: usize,
    cols: usize,
    synapses: Vec<Synapse2T2R>,
    pcsas: Vec<Pcsa>,
    device_params: DeviceParams,
    stats: ArrayStats,
    rng: StdRng,
    /// Combined per-read noise σ of one sense:
    /// `sqrt(2·read_noise² + pcsa_noise²)`.
    sense_sigma: f64,
    /// Cached deterministic sense outcome per cell (bit = weight readout
    /// sign); marginal cells hold `margin > 0` as a placeholder that the
    /// read paths overwrite with a fresh draw.
    det_rows: Vec<BitVec>,
    /// Per-row list of cells whose margin is inside the ±6σ band
    /// (empty on fresh devices).
    marginal: Vec<Vec<MarginalCell>>,
    gauss: stats::GaussianPairCache,
}

impl RramArray {
    /// Builds an array with all synapses initially programmed to −1.
    ///
    /// Each column gets its own PCSA instance with an independent mismatch
    /// offset, as on the real die.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn new(
        rows: usize,
        cols: usize,
        device_params: DeviceParams,
        pcsa_params: PcsaParams,
        seed: u64,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let synapses: Vec<Synapse2T2R> = (0..rows * cols)
            .map(|_| Synapse2T2R::new(false, &device_params, &mut rng))
            .collect();
        let pcsas: Vec<Pcsa> = (0..cols)
            .map(|_| Pcsa::new(&pcsa_params, &mut rng))
            .collect();
        // Every column amplifier is instantiated from the same params, so
        // one combined σ covers the array; read it back from an instance
        // so a future per-instance noise model cannot silently diverge
        // from the cached value.
        let pcsa_noise = pcsas[0].noise_sigma();
        let sense_sigma = (2.0 * device_params.read_noise * device_params.read_noise
            + pcsa_noise * pcsa_noise)
            .sqrt();
        let mut array = Self {
            rows,
            cols,
            synapses,
            pcsas,
            device_params,
            stats: ArrayStats::default(),
            rng,
            sense_sigma,
            det_rows: (0..rows).map(|_| BitVec::zeros(cols)).collect(),
            marginal: (0..rows).map(|_| Vec::new()).collect(),
            gauss: stats::GaussianPairCache::new(),
        };
        for row in 0..rows {
            for col in 0..cols {
                array.refresh_verdict(row, col);
            }
        }
        array
    }

    /// The paper's test-chip geometry: 32×32 synapses (1K synapses / 2K
    /// RRAM cells, Fig 2(c)).
    pub fn test_chip(seed: u64) -> Self {
        Self::new(
            32,
            32,
            DeviceParams::hfo2_default(),
            PcsaParams::default_130nm(),
            seed,
        )
    }

    /// Row count (word lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count (bit-line pairs / PCSAs).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Operation counters so far.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    /// Device parameters in use.
    pub fn device_params(&self) -> &DeviceParams {
        &self.device_params
    }

    /// Number of cells currently inside the marginal (Monte-Carlo) band —
    /// near zero on fresh devices, growing with wear.
    pub fn marginal_cells(&self) -> usize {
        self.marginal.iter().map(Vec::len).sum()
    }

    /// Expected number of sense outcomes deviating from the cached
    /// deterministic verdicts in one full read sweep of the array (every
    /// row sensed once): the sum over marginal cells of the Gaussian tail
    /// `Q(|margin| / σ)` of the combined per-read noise. Deterministic
    /// cells contribute < 1e-9 each by the gating guarantee and are
    /// excluded. This is the margin-model quantity differential testing
    /// uses to bound how far a noisy evaluation may drift from the
    /// noise-free one.
    pub fn flip_expectation(&self) -> f64 {
        if self.sense_sigma <= 0.0 {
            return 0.0;
        }
        self.marginal
            .iter()
            .flatten()
            .map(|m| stats::gaussian_tail(m.margin.abs() / self.sense_sigma))
            .sum()
    }

    fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of range"
        );
        row * self.cols + col
    }

    /// Recomputes the cached sense verdict of one cell from its realized
    /// log-resistances and the column PCSA offset. Called at program time;
    /// wear fast-forwarding ([`set_cycles`](Self::set_cycles)) does not
    /// resample resistances, so verdicts stay valid until the next
    /// programming event.
    fn refresh_verdict(&mut self, row: usize, col: usize) {
        let idx = row * self.cols + col;
        let (bl, blb) = self.synapses[idx].cells();
        let margin = blb.log_resistance() - bl.log_resistance() + self.pcsas[col].offset();
        self.det_rows[row].set(col, margin > 0.0);
        let cells = &mut self.marginal[row];
        if let Some(pos) = cells.iter().position(|m| m.col == col) {
            cells.swap_remove(pos);
        }
        if self.sense_sigma > 0.0 && margin.abs() < DETERMINISTIC_Z * self.sense_sigma {
            cells.push(MarginalCell { col, margin });
        }
    }

    /// One Monte-Carlo sense of a marginal cell: the cached margin plus one
    /// combined Gaussian draw — the same decision distribution as the
    /// original three-draw sampler (two device read noises and the PCSA
    /// comparison noise sum to a single zero-mean Gaussian).
    #[inline]
    fn sample_marginal(&mut self, margin: f64) -> bool {
        margin + self.sense_sigma * self.gauss.sample(&mut self.rng) > 0.0
    }

    /// Programs a single synapse.
    pub fn program_bit(&mut self, row: usize, col: usize, weight: bool) {
        let idx = self.index(row, col);
        self.synapses[idx].program(weight, &self.device_params, &mut self.rng);
        self.stats.programs += 1;
        self.refresh_verdict(row, col);
    }

    /// Programs one word line from a bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != cols`.
    pub fn program_row(&mut self, row: usize, weights: &BitVec) {
        assert_eq!(weights.len(), self.cols, "row width mismatch");
        for col in 0..self.cols {
            self.program_bit(row, col, weights.get(col));
        }
    }

    /// Programs the top-left `matrix.rows() × matrix.cols()` region.
    ///
    /// # Panics
    ///
    /// Panics if the matrix exceeds the array in either dimension.
    pub fn program_matrix(&mut self, matrix: &BitMatrix) {
        assert!(
            matrix.rows() <= self.rows && matrix.cols() <= self.cols,
            "matrix {}×{} exceeds array {}×{}",
            matrix.rows(),
            matrix.cols(),
            self.rows,
            self.cols
        );
        for row in 0..matrix.rows() {
            for col in 0..matrix.cols() {
                self.program_bit(row, col, matrix.get(row, col));
            }
        }
    }

    /// Fast-forwards the wear state of every device.
    ///
    /// Wear changes the statistics of *future* programming events, not the
    /// already-realized resistances, so cached sense verdicts stay valid.
    pub fn set_cycles(&mut self, cycles: u64) {
        for s in &mut self.synapses {
            s.set_cycles(cycles);
        }
    }

    /// Re-programs every synapse to its currently-stored weight — the
    /// periodic refresh cycle of a deployed fabric. On worn devices
    /// (after [`set_cycles`](Self::set_cycles)) the re-realized
    /// resistances draw from the widened, weak-event-prone worn
    /// distributions, so the marginal band grows: refresh is the path
    /// through which accumulated wear becomes visible to inference.
    pub fn refresh(&mut self) {
        for row in 0..self.rows {
            for col in 0..self.cols {
                let idx = row * self.cols + col;
                let weight = self.synapses[idx].programmed_weight();
                self.program_bit(row, col, weight);
            }
        }
    }

    /// Reads one word line through the column PCSAs.
    pub fn read_row(&mut self, row: usize) -> BitVec {
        assert!(row < self.rows, "row {row} out of range");
        self.stats.senses += self.cols as u64;
        let mut out = self.det_rows[row].clone();
        if !self.marginal[row].is_empty() {
            let cells = std::mem::take(&mut self.marginal[row]);
            for m in &cells {
                let bit = self.sample_marginal(m.margin);
                out.set(m.col, bit);
            }
            self.marginal[row] = cells;
        }
        out
    }

    /// Reads one word line with per-column XNOR inputs (Fig 3(b)/Fig 5):
    /// returns the column-wise `XNOR(weight, input)` bits.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != cols`.
    pub fn xnor_read_row(&mut self, row: usize, input: &BitVec) -> BitVec {
        assert_eq!(input.len(), self.cols, "input width mismatch");
        self.read_row(row).xnor(input)
    }

    /// One fully-connected-layer partial sum (Fig 5): XNOR-read row `row`
    /// against `input` and popcount the result in the shared logic.
    pub fn xnor_popcount_row(&mut self, row: usize, input: &BitVec) -> u32 {
        self.xnor_popcount_row_prefix(row, input, self.cols)
    }

    /// [`xnor_popcount_row`](Self::xnor_popcount_row) counting only the
    /// first `prefix` columns — the shared-logic view of a partially
    /// occupied edge tile, where padding columns are excluded from the sum.
    ///
    /// Every column is still physically sensed (and counted in
    /// [`stats`](Self::stats)): the PCSAs fire per word-line activation
    /// regardless of how many outputs the popcount tree consumes.
    ///
    /// This is the engine hot path: deterministic cells resolve through
    /// one word-level XNOR/popcount against the cached row; only marginal
    /// cells touch the RNG.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != cols` or `prefix > cols`.
    pub fn xnor_popcount_row_prefix(&mut self, row: usize, input: &BitVec, prefix: usize) -> u32 {
        assert!(row < self.rows, "row {row} out of range");
        assert_eq!(input.len(), self.cols, "input width mismatch");
        assert!(prefix <= self.cols, "prefix {prefix} exceeds {}", self.cols);
        self.stats.senses += self.cols as u64;
        let mut count = self.det_rows[row].xnor_popcount_first(input, prefix) as i64;
        if !self.marginal[row].is_empty() {
            let cells = std::mem::take(&mut self.marginal[row]);
            for m in cells.iter().filter(|m| m.col < prefix) {
                let sensed = self.sample_marginal(m.margin);
                let actual = sensed == input.get(m.col);
                let cached = self.det_rows[row].get(m.col) == input.get(m.col);
                count += actual as i64 - cached as i64;
            }
            self.marginal[row] = cells;
        }
        count as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endurance;
    use rand::Rng;

    fn checkerboard(rows: usize, cols: usize) -> BitMatrix {
        let vals: Vec<f32> = (0..rows * cols)
            .map(|i| {
                if (i / cols + i % cols) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        BitMatrix::from_signs(&vals, rows, cols)
    }

    #[test]
    fn program_read_roundtrip_on_fresh_devices() {
        let mut array = RramArray::test_chip(0);
        let pattern = checkerboard(32, 32);
        array.program_matrix(&pattern);
        for row in 0..32 {
            let bits = array.read_row(row);
            for col in 0..32 {
                assert_eq!(
                    bits.get(col),
                    pattern.get(row, col),
                    "mismatch at ({row},{col})"
                );
            }
        }
    }

    #[test]
    fn xnor_popcount_matches_software_reference() {
        let mut array = RramArray::test_chip(1);
        let pattern = checkerboard(32, 32);
        array.program_matrix(&pattern);
        let mut rng = StdRng::seed_from_u64(2);
        for row in 0..8 {
            let input: BitVec = (0..32).map(|_| rng.gen::<bool>()).collect();
            let hw = array.xnor_popcount_row(row, &input);
            let sw = pattern.row(row).xnor_popcount(&input);
            assert_eq!(hw, sw, "row {row}");
        }
    }

    #[test]
    fn stats_count_operations() {
        let mut array = RramArray::new(
            4,
            8,
            DeviceParams::hfo2_default(),
            PcsaParams::default_130nm(),
            3,
        );
        assert_eq!(array.stats(), ArrayStats::default());
        let row: BitVec = (0..8).map(|i| i % 2 == 0).collect();
        array.program_row(0, &row);
        let _ = array.read_row(0);
        assert_eq!(array.stats().programs, 8);
        assert_eq!(array.stats().senses, 8);
        // Prefix reads still sense every column.
        let input = BitVec::zeros(8);
        let _ = array.xnor_popcount_row_prefix(0, &input, 3);
        assert_eq!(array.stats().senses, 16);
    }

    #[test]
    fn fresh_arrays_are_almost_entirely_deterministic() {
        // The whole point of margin gating: on fresh devices the sense
        // margin clears 6σ for (essentially) every cell, so the hot path
        // never touches the RNG.
        let mut total_cells = 0usize;
        let mut total_marginal = 0usize;
        for seed in 0..8 {
            let mut array = RramArray::test_chip(seed);
            array.program_matrix(&checkerboard(32, 32));
            total_cells += 32 * 32;
            total_marginal += array.marginal_cells();
        }
        let frac = total_marginal as f64 / total_cells as f64;
        assert!(
            frac < 0.01,
            "fresh arrays should be ≫99% deterministic, marginal fraction {frac}"
        );
    }

    #[test]
    fn worn_arrays_grow_a_marginal_population() {
        let mut array = RramArray::test_chip(7);
        array.set_cycles(700_000_000);
        array.program_matrix(&checkerboard(32, 32));
        assert!(
            array.marginal_cells() > 0,
            "7e8-cycle programming must leave some cells in the marginal band"
        );
    }

    #[test]
    fn worn_array_shows_read_errors() {
        let mut array = RramArray::test_chip(4);
        let pattern = checkerboard(32, 32);
        // Wear out, then reprogram at high wear.
        array.set_cycles(700_000_000);
        array.program_matrix(&pattern);
        array.set_cycles(700_000_000);
        let mut errors = 0u32;
        let reads = 200;
        for _ in 0..reads {
            for row in 0..32 {
                let bits = array.read_row(row);
                for col in 0..32 {
                    if bits.get(col) != pattern.get(row, col) {
                        errors += 1;
                    }
                }
            }
        }
        let total = reads * 32 * 32;
        let ber = errors as f64 / total as f64;
        // 2T2R at 7e8 cycles: ≈ 1e-3 scale; definitely nonzero yet ≪ 1T1R's
        // percent scale.
        assert!(ber > 1e-5, "expected some worn-out errors, ber {ber}");
        assert!(ber < 3e-2, "2T2R ber {ber} should stay small");
    }

    #[test]
    fn gated_ber_matches_closed_form_of_ungated_sampler() {
        // Parity with the pre-gating Monte-Carlo path: the margin-gated
        // sense must reproduce the worn-device 2T2R BER of the original
        // three-draw sampler, whose exact value the endurance module
        // derives in closed form. Protocol mirrors Fig 4: re-program at
        // wear before every read so each trial sees fresh margins.
        let dp = DeviceParams::hfo2_default();
        let pp = PcsaParams::default_130nm();
        let cycles = 700_000_000u64;
        let cols = 64usize;
        let mut array = RramArray::new(1, cols, dp.clone(), pp.clone(), 0xBE12);
        let mut errors = 0u64;
        let trials = 3_000usize;
        for t in 0..trials {
            array.set_cycles(cycles);
            let weights: BitVec = (0..cols).map(|c| (t + c) % 2 == 0).collect();
            array.program_row(0, &weights);
            let got = array.read_row(0);
            for c in 0..cols {
                if got.get(c) != weights.get(c) {
                    errors += 1;
                }
            }
        }
        let mc = errors as f64 / (trials * cols) as f64;
        let analytic = endurance::analytic_point(&dp, &pp, cycles, 1.0).ber_2t2r;
        assert!(
            mc / analytic > 0.4 && mc / analytic < 2.5,
            "gated BER {mc:.3e} vs closed-form {analytic:.3e}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds array")]
    fn oversized_matrix_rejected() {
        let mut array = RramArray::new(
            4,
            4,
            DeviceParams::hfo2_default(),
            PcsaParams::default_130nm(),
            5,
        );
        array.program_matrix(&checkerboard(5, 4));
    }
}
