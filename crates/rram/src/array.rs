//! The 2T2R memory array with word/bit-line addressing and XNOR-PCSA
//! column sensing (Fig 2(a) of the paper: 32×32 synapses = 2K devices on
//! the fabricated die).

use rand::rngs::StdRng;
use rand::SeedableRng;

use rbnn_tensor::{BitMatrix, BitVec};

use crate::{DeviceParams, Pcsa, PcsaParams, Synapse2T2R};

/// Running operation counters of an array (feed the energy model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArrayStats {
    /// Device-pair programming events.
    pub programs: u64,
    /// PCSA sense operations (one per column per row read).
    pub senses: u64,
}

/// A rows × cols array of 2T2R synapses with one PCSA per column.
///
/// Word lines select a row; all columns are sensed in parallel, optionally
/// with per-column XNOR inputs (the architecture of Fig 5 builds
/// fully-connected BNN layers from this primitive plus popcount logic).
#[derive(Debug)]
pub struct RramArray {
    rows: usize,
    cols: usize,
    synapses: Vec<Synapse2T2R>,
    pcsas: Vec<Pcsa>,
    device_params: DeviceParams,
    stats: ArrayStats,
    rng: StdRng,
}

impl RramArray {
    /// Builds an array with all synapses initially programmed to −1.
    ///
    /// Each column gets its own PCSA instance with an independent mismatch
    /// offset, as on the real die.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `cols == 0`.
    pub fn new(
        rows: usize,
        cols: usize,
        device_params: DeviceParams,
        pcsa_params: PcsaParams,
        seed: u64,
    ) -> Self {
        assert!(rows > 0 && cols > 0, "array dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let synapses = (0..rows * cols)
            .map(|_| Synapse2T2R::new(false, &device_params, &mut rng))
            .collect();
        let pcsas = (0..cols)
            .map(|_| Pcsa::new(&pcsa_params, &mut rng))
            .collect();
        Self {
            rows,
            cols,
            synapses,
            pcsas,
            device_params,
            stats: ArrayStats::default(),
            rng,
        }
    }

    /// The paper's test-chip geometry: 32×32 synapses (1K synapses / 2K
    /// RRAM cells, Fig 2(c)).
    pub fn test_chip(seed: u64) -> Self {
        Self::new(
            32,
            32,
            DeviceParams::hfo2_default(),
            PcsaParams::default_130nm(),
            seed,
        )
    }

    /// Row count (word lines).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count (bit-line pairs / PCSAs).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Operation counters so far.
    pub fn stats(&self) -> ArrayStats {
        self.stats
    }

    /// Device parameters in use.
    pub fn device_params(&self) -> &DeviceParams {
        &self.device_params
    }

    fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) out of range"
        );
        row * self.cols + col
    }

    /// Programs a single synapse.
    pub fn program_bit(&mut self, row: usize, col: usize, weight: bool) {
        let idx = self.index(row, col);
        self.synapses[idx].program(weight, &self.device_params, &mut self.rng);
        self.stats.programs += 1;
    }

    /// Programs one word line from a bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != cols`.
    pub fn program_row(&mut self, row: usize, weights: &BitVec) {
        assert_eq!(weights.len(), self.cols, "row width mismatch");
        for col in 0..self.cols {
            self.program_bit(row, col, weights.get(col));
        }
    }

    /// Programs the top-left `matrix.rows() × matrix.cols()` region.
    ///
    /// # Panics
    ///
    /// Panics if the matrix exceeds the array in either dimension.
    pub fn program_matrix(&mut self, matrix: &BitMatrix) {
        assert!(
            matrix.rows() <= self.rows && matrix.cols() <= self.cols,
            "matrix {}×{} exceeds array {}×{}",
            matrix.rows(),
            matrix.cols(),
            self.rows,
            self.cols
        );
        for row in 0..matrix.rows() {
            for col in 0..matrix.cols() {
                self.program_bit(row, col, matrix.get(row, col));
            }
        }
    }

    /// Fast-forwards the wear state of every device.
    pub fn set_cycles(&mut self, cycles: u64) {
        for s in &mut self.synapses {
            s.set_cycles(cycles);
        }
    }

    /// Reads one word line through the column PCSAs.
    pub fn read_row(&mut self, row: usize) -> BitVec {
        let mut out = BitVec::zeros(self.cols);
        for col in 0..self.cols {
            let idx = self.index(row, col);
            let bit = self.synapses[idx].read(&self.pcsas[col], &self.device_params, &mut self.rng);
            out.set(col, bit);
            self.stats.senses += 1;
        }
        out
    }

    /// Reads one word line with per-column XNOR inputs (Fig 3(b)/Fig 5):
    /// returns the column-wise `XNOR(weight, input)` bits.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != cols`.
    pub fn xnor_read_row(&mut self, row: usize, input: &BitVec) -> BitVec {
        assert_eq!(input.len(), self.cols, "input width mismatch");
        let mut out = BitVec::zeros(self.cols);
        for col in 0..self.cols {
            let idx = self.index(row, col);
            let bit = self.synapses[idx].read_xnor(
                input.get(col),
                &self.pcsas[col],
                &self.device_params,
                &mut self.rng,
            );
            out.set(col, bit);
            self.stats.senses += 1;
        }
        out
    }

    /// One fully-connected-layer partial sum (Fig 5): XNOR-read row `row`
    /// against `input` and popcount the result in the shared logic.
    pub fn xnor_popcount_row(&mut self, row: usize, input: &BitVec) -> u32 {
        self.xnor_read_row(row, input).count_ones()
    }

    /// [`xnor_popcount_row`](Self::xnor_popcount_row) counting only the
    /// first `prefix` columns — the shared-logic view of a partially
    /// occupied edge tile, where padding columns are excluded from the sum.
    ///
    /// Every column is still physically sensed (and counted in
    /// [`stats`](Self::stats)): the PCSAs fire per word-line activation
    /// regardless of how many outputs the popcount tree consumes.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != cols` or `prefix > cols`.
    pub fn xnor_popcount_row_prefix(&mut self, row: usize, input: &BitVec, prefix: usize) -> u32 {
        self.xnor_read_row(row, input).count_ones_first(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn checkerboard(rows: usize, cols: usize) -> BitMatrix {
        let vals: Vec<f32> = (0..rows * cols)
            .map(|i| {
                if (i / cols + i % cols) % 2 == 0 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect();
        BitMatrix::from_signs(&vals, rows, cols)
    }

    #[test]
    fn program_read_roundtrip_on_fresh_devices() {
        let mut array = RramArray::test_chip(0);
        let pattern = checkerboard(32, 32);
        array.program_matrix(&pattern);
        for row in 0..32 {
            let bits = array.read_row(row);
            for col in 0..32 {
                assert_eq!(
                    bits.get(col),
                    pattern.get(row, col),
                    "mismatch at ({row},{col})"
                );
            }
        }
    }

    #[test]
    fn xnor_popcount_matches_software_reference() {
        let mut array = RramArray::test_chip(1);
        let pattern = checkerboard(32, 32);
        array.program_matrix(&pattern);
        let mut rng = StdRng::seed_from_u64(2);
        for row in 0..8 {
            let input: BitVec = (0..32).map(|_| rng.gen::<bool>()).collect();
            let hw = array.xnor_popcount_row(row, &input);
            let sw = pattern.row(row).xnor_popcount(&input);
            assert_eq!(hw, sw, "row {row}");
        }
    }

    #[test]
    fn stats_count_operations() {
        let mut array = RramArray::new(
            4,
            8,
            DeviceParams::hfo2_default(),
            PcsaParams::default_130nm(),
            3,
        );
        assert_eq!(array.stats(), ArrayStats::default());
        let row: BitVec = (0..8).map(|i| i % 2 == 0).collect();
        array.program_row(0, &row);
        let _ = array.read_row(0);
        assert_eq!(array.stats().programs, 8);
        assert_eq!(array.stats().senses, 8);
    }

    #[test]
    fn worn_array_shows_read_errors() {
        let mut array = RramArray::test_chip(4);
        let pattern = checkerboard(32, 32);
        // Wear out, then reprogram at high wear.
        array.set_cycles(700_000_000);
        array.program_matrix(&pattern);
        array.set_cycles(700_000_000);
        let mut errors = 0u32;
        let reads = 200;
        for _ in 0..reads {
            for row in 0..32 {
                let bits = array.read_row(row);
                for col in 0..32 {
                    if bits.get(col) != pattern.get(row, col) {
                        errors += 1;
                    }
                }
            }
        }
        let total = reads * 32 * 32;
        let ber = errors as f64 / total as f64;
        // 2T2R at 7e8 cycles: ≈ 1e-3 scale; definitely nonzero yet ≪ 1T1R's
        // percent scale.
        assert!(ber > 1e-5, "expected some worn-out errors, ber {ber}");
        assert!(ber < 3e-2, "2T2R ber {ber} should stay small");
    }

    #[test]
    #[should_panic(expected = "exceeds array")]
    fn oversized_matrix_rejected() {
        let mut array = RramArray::new(
            4,
            4,
            DeviceParams::hfo2_default(),
            PcsaParams::default_130nm(),
            5,
        );
        array.program_matrix(&checkerboard(5, 4));
    }
}
