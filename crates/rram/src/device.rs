//! Behavioural model of a hafnium-oxide resistive memory cell.
//!
//! The paper's test chip stores weights in HfO₂ RRAM integrated in the BEOL
//! of a 130 nm CMOS process (§II-B, Fig 2). What matters for the system-level
//! claims is the *statistics* of the two programmable states and how they
//! degrade with programming cycles:
//!
//! * LRS and HRS resistances are **log-normally distributed** across
//!   programming events (cycle-to-cycle variability), the HRS spread being
//!   wider — the standard observation for filamentary oxide RRAM;
//! * repeated SET/RESET cycling **widens** both distributions (device
//!   wear), driving the growing bit-error rates of Fig 4;
//! * occasionally a programming event leaves the device in a **weak,
//!   borderline state** near the LRS/HRS boundary. A single-ended (1T1R)
//!   read of a weak device is a coin flip, while a differential 2T2R read
//!   still resolves correctly unless *both* devices of the pair are weak —
//!   the mechanism by which differential storage buys its ~two orders of
//!   magnitude (the paper's companion studies \[15\], \[16\] liken it to a
//!   single-error-correction code of equivalent redundancy).

use rand::Rng;

use crate::stats;

/// The two programmable resistance states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResistiveState {
    /// Low-resistance state (SET).
    Lrs,
    /// High-resistance state (RESET).
    Hrs,
}

impl ResistiveState {
    /// The complementary state.
    pub fn complement(self) -> Self {
        match self {
            ResistiveState::Lrs => ResistiveState::Hrs,
            ResistiveState::Hrs => ResistiveState::Lrs,
        }
    }
}

/// Statistical parameters of the device model. All resistances are handled
/// in natural-log space (`ln Ω`).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Median LRS resistance, `ln Ω` (default `ln 5 kΩ`).
    pub lrs_mu: f64,
    /// Fresh-device LRS log-spread.
    pub lrs_sigma: f64,
    /// Median HRS resistance, `ln Ω` (default `ln 100 kΩ`).
    pub hrs_mu: f64,
    /// Fresh-device HRS log-spread.
    pub hrs_sigma: f64,
    /// Linear distribution-widening coefficient per 10⁸ cycles:
    /// `σ(c) = σ₀ · (1 + wear_rate · c/10⁸)`.
    pub wear_rate: f64,
    /// Probability of a *weak* programming event at 10⁸ cycles; grows
    /// quadratically with cycles (`p(c) = p₀ · (c/10⁸)²`, capped at 0.5).
    pub weak_prob_1e8: f64,
    /// Half-width of the weak-state band around the LRS/HRS log-midpoint.
    pub weak_band: f64,
    /// Multiplicative read noise (log-space σ per read).
    pub read_noise: f64,
}

impl DeviceParams {
    /// Parameters calibrated so the endurance experiment reproduces the
    /// shape of Fig 4: 1T1R BER ≈ 10⁻⁴ at 10⁸ cycles rising to ≈ 10⁻² at
    /// 7×10⁸, with the 2T2R BER about two orders of magnitude lower.
    pub fn hfo2_default() -> Self {
        Self {
            lrs_mu: (5.0e3f64).ln(),
            lrs_sigma: 0.363,
            hrs_mu: (100.0e3f64).ln(),
            hrs_sigma: 0.363,
            wear_rate: 0.111,
            weak_prob_1e8: 2.0e-4,
            weak_band: 0.3,
            read_noise: 0.02,
        }
    }

    /// Log-resistance midpoint between the two state medians — the natural
    /// single-ended read reference.
    pub fn log_midpoint(&self) -> f64 {
        0.5 * (self.lrs_mu + self.hrs_mu)
    }

    /// Distribution-widening factor after `cycles` programming events.
    pub fn sigma_multiplier(&self, cycles: u64) -> f64 {
        1.0 + self.wear_rate * cycles as f64 / 1.0e8
    }

    /// Weak-programming probability after `cycles` events.
    pub fn weak_probability(&self, cycles: u64) -> f64 {
        let x = cycles as f64 / 1.0e8;
        (self.weak_prob_1e8 * x * x).min(0.5)
    }

    /// Effective log-spread of a state at a given wear level.
    pub fn state_sigma(&self, state: ResistiveState, cycles: u64) -> f64 {
        let base = match state {
            ResistiveState::Lrs => self.lrs_sigma,
            ResistiveState::Hrs => self.hrs_sigma,
        };
        base * self.sigma_multiplier(cycles)
    }

    /// Median log-resistance of a state.
    pub fn state_mu(&self, state: ResistiveState) -> f64 {
        match state {
            ResistiveState::Lrs => self.lrs_mu,
            ResistiveState::Hrs => self.hrs_mu,
        }
    }
}

impl Default for DeviceParams {
    fn default() -> Self {
        Self::hfo2_default()
    }
}

/// One resistive memory cell: its programmed state, the resistance realized
/// by the most recent programming event, and its cycling history.
#[derive(Debug, Clone, PartialEq)]
pub struct RramCell {
    state: ResistiveState,
    log_resistance: f64,
    cycles: u64,
    /// Per-device wear asymmetry factor (≈1.0); lets an array model
    /// fabrication spread, and the endurance bench model the slightly
    /// different BL/BLb wear visible in Fig 4.
    wear_scale: f64,
}

impl RramCell {
    /// A fresh cell, formed and programmed once into `state`.
    pub fn new(state: ResistiveState, params: &DeviceParams, rng: &mut impl Rng) -> Self {
        let mut cell = Self {
            state,
            log_resistance: 0.0,
            cycles: 0,
            wear_scale: 1.0,
        };
        cell.sample_resistance(params, rng);
        cell
    }

    /// Builder-style per-device wear asymmetry.
    pub fn with_wear_scale(mut self, scale: f64) -> Self {
        self.wear_scale = scale;
        self
    }

    /// The programmed state.
    pub fn state(&self) -> ResistiveState {
        self.state
    }

    /// Total programming events experienced.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Jumps the wear counter (endurance experiments fast-forward through
    /// millions of cycles instead of simulating each one).
    pub fn set_cycles(&mut self, cycles: u64) {
        self.cycles = cycles;
    }

    /// Effective cycles after the per-device wear asymmetry.
    fn effective_cycles(&self) -> u64 {
        (self.cycles as f64 * self.wear_scale) as u64
    }

    fn sample_resistance(&mut self, params: &DeviceParams, rng: &mut impl Rng) {
        let cycles = self.effective_cycles();
        let p_weak = params.weak_probability(cycles);
        if rng.gen::<f64>() < p_weak {
            // Weak event: the filament ends up borderline, uniformly within
            // a band around the read midpoint.
            let mid = params.log_midpoint();
            self.log_resistance = mid + rng.gen_range(-params.weak_band..params.weak_band);
        } else {
            let mu = params.state_mu(self.state);
            let sigma = params.state_sigma(self.state, cycles);
            self.log_resistance = stats::normal(mu, sigma, rng);
        }
    }

    /// Programs the cell to `state`: increments the wear counter and
    /// resamples the realized resistance.
    pub fn program(&mut self, state: ResistiveState, params: &DeviceParams, rng: &mut impl Rng) {
        self.state = state;
        self.cycles += 1;
        self.sample_resistance(params, rng);
    }

    /// The noiseless log-resistance realized by the most recent programming
    /// event — the per-read-invariant quantity a margin-gated sense path
    /// caches (per-read noise is then folded into the comparison's combined
    /// Gaussian instead of being sampled per device).
    pub fn log_resistance(&self) -> f64 {
        self.log_resistance
    }

    /// Reads the resistance (log-space), with read noise.
    pub fn read_log_resistance(&self, params: &DeviceParams, rng: &mut impl Rng) -> f64 {
        self.log_resistance + stats::normal(0.0, params.read_noise, rng)
    }

    /// Reads the resistance in ohms.
    pub fn read_resistance(&self, params: &DeviceParams, rng: &mut impl Rng) -> f64 {
        self.read_log_resistance(params, rng).exp()
    }

    /// Single-ended (1T1R) digital read: compares against a reference
    /// log-resistance; below the reference reads as LRS.
    pub fn read_1t1r(
        &self,
        reference_log: f64,
        params: &DeviceParams,
        rng: &mut impl Rng,
    ) -> ResistiveState {
        if self.read_log_resistance(params, rng) < reference_log {
            ResistiveState::Lrs
        } else {
            ResistiveState::Hrs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_states_are_well_separated() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut errors = 0;
        let n = 20_000;
        let reference = params.log_midpoint();
        for i in 0..n {
            let state = if i % 2 == 0 {
                ResistiveState::Lrs
            } else {
                ResistiveState::Hrs
            };
            let cell = RramCell::new(state, &params, &mut rng);
            if cell.read_1t1r(reference, &params, &mut rng) != state {
                errors += 1;
            }
        }
        // Fresh z ≈ 4.1 → error ≈ 2e-5; expect ~0 errors out of 20k.
        assert!(errors <= 3, "{errors} errors on fresh devices");
    }

    #[test]
    fn wear_widens_distributions() {
        let params = DeviceParams::hfo2_default();
        assert!(params.sigma_multiplier(0) == 1.0);
        let s1 = params.state_sigma(ResistiveState::Lrs, 100_000_000);
        let s7 = params.state_sigma(ResistiveState::Lrs, 700_000_000);
        assert!(s7 > s1 && s1 > params.lrs_sigma);
        // Calibration: ×1.6 spread growth from 1e8 to 7e8 cycles.
        assert!((s7 / s1 - 1.6).abs() < 0.05, "ratio {}", s7 / s1);
    }

    #[test]
    fn weak_probability_grows_quadratically() {
        let params = DeviceParams::hfo2_default();
        let p1 = params.weak_probability(100_000_000);
        let p2 = params.weak_probability(200_000_000);
        assert!((p2 / p1 - 4.0).abs() < 1e-6);
        assert!((p1 - 2e-4).abs() < 1e-9);
        // Capped.
        assert!(params.weak_probability(u64::MAX / 2) <= 0.5);
    }

    #[test]
    fn worn_device_errs_more() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(1);
        let reference = params.log_midpoint();
        let count_errors = |cycles: u64, rng: &mut StdRng| {
            let mut errors = 0;
            let n = 30_000;
            for i in 0..n {
                let state = if i % 2 == 0 {
                    ResistiveState::Lrs
                } else {
                    ResistiveState::Hrs
                };
                let mut cell = RramCell::new(state, &params, rng);
                cell.set_cycles(cycles);
                cell.program(state, &params, rng);
                if cell.read_1t1r(reference, &params, rng) != state {
                    errors += 1;
                }
            }
            errors
        };
        let fresh = count_errors(0, &mut rng);
        let worn = count_errors(700_000_000, &mut rng);
        assert!(
            worn > fresh + 50,
            "worn device must err far more: fresh {fresh}, worn {worn}"
        );
    }

    #[test]
    fn program_flips_state_and_counts_cycles() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cell = RramCell::new(ResistiveState::Lrs, &params, &mut rng);
        assert_eq!(cell.state(), ResistiveState::Lrs);
        cell.program(ResistiveState::Hrs, &params, &mut rng);
        assert_eq!(cell.state(), ResistiveState::Hrs);
        assert_eq!(cell.cycles(), 1);
    }

    #[test]
    fn complement_involution() {
        assert_eq!(ResistiveState::Lrs.complement(), ResistiveState::Hrs);
        assert_eq!(
            ResistiveState::Hrs.complement().complement(),
            ResistiveState::Hrs
        );
    }

    #[test]
    fn read_resistance_is_positive_and_near_median() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(3);
        let cell = RramCell::new(ResistiveState::Lrs, &params, &mut rng);
        let r = cell.read_resistance(&params, &mut rng);
        assert!(
            r > 100.0 && r < 1.0e6,
            "LRS resistance {r} out of plausible range"
        );
    }
}
