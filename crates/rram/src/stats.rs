//! Small statistics toolkit: normal/log-normal sampling and Gaussian tail
//! probabilities.
//!
//! Implemented in-crate (Box–Muller + an Abramowitz–Stegun `erfc`
//! approximation) to keep the workspace's dependency set to the allowed
//! list; `rand_distr` is deliberately not used.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
pub fn randn(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, std²)`.
pub fn normal(mean: f64, std: f64, rng: &mut impl Rng) -> f64 {
    mean + std * randn(rng)
}

/// Standard-normal sampler that keeps the second Box–Muller variate.
///
/// One Box–Muller transform yields a *pair* of independent standard
/// normals (`r·cos θ`, `r·sin θ`); [`randn`] discards the sine term, so a
/// hot path calling it pays the `ln`/`sqrt` and a trig evaluation on every
/// draw. This cache hands the spare variate out on the next call, halving
/// the transform count — the margin-gated PCSA path draws through one of
/// these per array.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GaussianPairCache {
    spare: Option<f64>,
}

impl GaussianPairCache {
    /// An empty cache (first draw performs a full transform).
    pub fn new() -> Self {
        Self::default()
    }

    /// Draws one standard normal, using the cached spare variate when one
    /// is available.
    #[inline]
    pub fn sample(&mut self, rng: &mut impl Rng) -> f64 {
        if let Some(spare) = self.spare.take() {
            return spare;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }
}

/// Samples a log-normal: `exp(N(mu_log, sigma_log²))`.
///
/// `mu_log` and `sigma_log` parameterize the distribution of the *logarithm*
/// — the natural parameterization for resistive-memory resistance spreads.
pub fn lognormal(mu_log: f64, sigma_log: f64, rng: &mut impl Rng) -> f64 {
    normal(mu_log, sigma_log, rng).exp()
}

/// Complementary error function, Abramowitz & Stegun 7.1.26 (max absolute
/// error ≈ 1.5e−7 — ample for bit-error-rate curves spanning decades).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let result = poly * (-x * x).exp();
    if sign_negative {
        2.0 - result
    } else {
        result
    }
}

/// Upper-tail probability of the standard normal, `P(Z > z)`.
pub fn gaussian_tail(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(0);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| normal(3.0, 2.0, &mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_median() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut xs: Vec<f64> = (0..n).map(|_| lognormal(9.0, 0.5, &mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        // Median of a log-normal is exp(mu).
        assert!(
            (median.ln() - 9.0).abs() < 0.02,
            "median ln {}",
            median.ln()
        );
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn erfc_reference_values() {
        // erfc(0) = 1, erfc(∞) → 0, erfc(−x) = 2 − erfc(x).
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!(erfc(4.0) < 2e-8);
        assert!((erfc(-1.0) - (2.0 - erfc(1.0))).abs() < 1e-9);
        // erfc(1) ≈ 0.157299.
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
    }

    #[test]
    fn gaussian_tail_matches_known_quantiles() {
        // P(Z > 1.2816) ≈ 0.10 ; P(Z > 2.3263) ≈ 0.01 ; P(Z > 3.0902) ≈ 1e-3.
        assert!((gaussian_tail(1.2816) - 0.10).abs() < 1e-3);
        assert!((gaussian_tail(2.3263) - 0.01).abs() < 2e-4);
        assert!((gaussian_tail(3.0902) - 1e-3).abs() < 5e-5);
    }

    #[test]
    fn gaussian_pair_cache_moments_match_randn() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut cache = GaussianPairCache::new();
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| cache.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 1.0).abs() < 0.02, "std {}", var.sqrt());
        // Pair members must be independent: lag-1 autocorrelation ≈ 0.
        let lag1: f64 = xs.windows(2).map(|w| w[0] * w[1]).sum::<f64>() / (n - 1) as f64;
        assert!(lag1.abs() < 0.02, "lag-1 correlation {lag1}");
    }

    #[test]
    fn gaussian_tail_agrees_with_monte_carlo() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let z = 1.5;
        let hits = (0..n).filter(|_| randn(&mut rng) > z).count();
        let mc = hits as f64 / n as f64;
        assert!(
            (mc - gaussian_tail(z)).abs() < 0.005,
            "MC {mc} vs analytic {}",
            gaussian_tail(z)
        );
    }
}
