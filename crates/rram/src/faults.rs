//! Weight bit-error (fault) injection.
//!
//! The reason the paper can drop error-correcting codes (§II-B) is that
//! BNN accuracy degrades gracefully under rare weight bit flips once 2T2R
//! sensing has pushed the BER down. This module injects i.i.d. bit flips at
//! a chosen BER into packed weight matrices or whole deployed networks so
//! the accuracy-vs-BER relation can be swept (the extension experiment of
//! DESIGN.md, after refs \[15\], \[16\]).

use rand::Rng;

use rbnn_binary::BinaryNetwork;
use rbnn_tensor::BitMatrix;

/// Flips each bit of `matrix` independently with probability `ber`;
/// returns the number of flips.
///
/// # Panics
///
/// Panics unless `0 ≤ ber ≤ 1`.
pub fn inject_matrix(matrix: &mut BitMatrix, ber: f64, rng: &mut impl Rng) -> usize {
    assert!(
        (0.0..=1.0).contains(&ber),
        "BER must be a probability, got {ber}"
    );
    if ber == 0.0 {
        return 0;
    }
    let mut flips = 0;
    for r in 0..matrix.rows() {
        for c in 0..matrix.cols() {
            if rng.gen::<f64>() < ber {
                matrix.flip(r, c);
                flips += 1;
            }
        }
    }
    flips
}

/// Flips each stored weight bit of a deployed [`BinaryNetwork`]
/// independently with probability `ber`; returns the total number of flips.
///
/// # Panics
///
/// Panics unless `0 ≤ ber ≤ 1`.
pub fn inject_network(network: &mut BinaryNetwork, ber: f64, rng: &mut impl Rng) -> usize {
    let mut flips = 0;
    for layer in network.layers_mut() {
        flips += inject_matrix(layer.weights_mut(), ber, rng);
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rbnn_binary::BinaryDense;

    #[test]
    fn zero_ber_flips_nothing() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = BitMatrix::zeros(16, 16);
        assert_eq!(inject_matrix(&mut m, 0.0, &mut rng), 0);
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn flip_count_tracks_ber() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = BitMatrix::zeros(100, 100);
        let flips = inject_matrix(&mut m, 0.05, &mut rng);
        // E = 500, σ ≈ 22.
        assert!((380..=620).contains(&flips), "flips {flips}");
        assert_eq!(
            m.count_ones() as usize,
            flips,
            "every flip must set a bit from zero"
        );
    }

    #[test]
    fn full_ber_flips_everything() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = BitMatrix::zeros(8, 8);
        assert_eq!(inject_matrix(&mut m, 1.0, &mut rng), 64);
        assert_eq!(m.count_ones(), 64);
    }

    #[test]
    fn network_injection_touches_all_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let l1 = BinaryDense::new(BitMatrix::zeros(8, 16), vec![1.0; 8], vec![0.0; 8]);
        let l2 = BinaryDense::new(BitMatrix::zeros(2, 8), vec![1.0; 2], vec![0.0; 2]);
        let mut net = BinaryNetwork::new(vec![l1, l2]);
        let flips = inject_network(&mut net, 1.0, &mut rng);
        assert_eq!(flips, 8 * 16 + 2 * 8);
    }

    #[test]
    fn same_seed_produces_identical_flip_set() {
        // Seeded reproducibility is what makes fault campaigns auditable:
        // the same seed must flip exactly the same cells, across both odd
        // and word-aligned geometries.
        for (rows, cols) in [(37usize, 65usize), (64, 64), (5, 193)] {
            let run = |seed: u64| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut m = BitMatrix::zeros(rows, cols);
                let flips = inject_matrix(&mut m, 0.03, &mut rng);
                (flips, m)
            };
            let (flips_a, a) = run(7);
            let (flips_b, b) = run(7);
            assert_eq!(flips_a, flips_b);
            assert_eq!(a, b, "flip sets diverge for identical seeds");
            // A different seed draws a different flip pattern (flip
            // *count* may collide; the set essentially cannot).
            let (_, c) = run(8);
            assert_ne!(a, c, "distinct seeds should flip distinct cells");
        }
    }

    #[test]
    fn flip_count_stays_within_binomial_bounds() {
        // Flips are i.i.d. Bernoulli per bit, so across many seeds the
        // count must track Binomial(n, ber): every draw within ±5σ of the
        // mean (a ~1e-6-level bound), and the empirical mean within 3
        // standard errors.
        let (rows, cols, ber) = (64usize, 129usize, 0.02f64);
        let n = (rows * cols) as f64;
        let mean = n * ber;
        let sigma = (n * ber * (1.0 - ber)).sqrt();
        let draws = 40;
        let mut total = 0f64;
        for seed in 0..draws {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let mut m = BitMatrix::zeros(rows, cols);
            let flips = inject_matrix(&mut m, ber, &mut rng) as f64;
            assert_eq!(
                m.count_ones() as usize,
                flips as usize,
                "each flip must toggle a distinct zero bit"
            );
            assert!(
                (flips - mean).abs() <= 5.0 * sigma,
                "seed {seed}: {flips} flips vs Binomial({n}, {ber}) mean {mean:.1} σ {sigma:.1}"
            );
            total += flips;
        }
        let empirical_mean = total / draws as f64;
        let se = sigma / (draws as f64).sqrt();
        assert!(
            (empirical_mean - mean).abs() <= 3.0 * se,
            "empirical mean {empirical_mean:.1} vs {mean:.1} (se {se:.2})"
        );
    }

    #[test]
    #[should_panic(expected = "BER must be a probability")]
    fn invalid_ber_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = BitMatrix::zeros(2, 2);
        let _ = inject_matrix(&mut m, 1.5, &mut rng);
    }
}
