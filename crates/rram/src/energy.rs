//! First-order energy model: in-memory BNN inference versus digital
//! references.
//!
//! The paper's motivation (§I) is that "the major drain of energy … comes
//! from data shuffling between processing logic and memory". This module
//! quantifies that argument for the deployed classifier: an in-RRAM layer
//! spends one PCSA sense plus one popcount-adder step per synapse and moves
//! no weights at all, whereas a digital implementation spends a MAC *and* a
//! weight fetch per synapse.
//!
//! The constants are deliberately coarse, literature-ballpark figures
//! (45 nm estimates after Horowitz, ISSCC 2014, and typical RRAM/PCSA
//! publications); the tests therefore assert *relations* (orderings,
//! scalings), never absolute values. Absolute numbers are printed by the
//! bench for qualitative comparison only.

use rbnn_binary::BinaryNetwork;

/// Energy constants in femtojoules per elementary operation.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// One PCSA differential sense (includes the XNOR).
    pub sense_fj: f64,
    /// One popcount adder-tree bit accumulation.
    pub popcount_bit_fj: f64,
    /// One device-pair programming event (amortized over inferences; only
    /// reported separately).
    pub program_fj: f64,
    /// One 8-bit integer MAC in digital logic.
    pub mac_int8_fj: f64,
    /// One 32-bit floating-point MAC.
    pub mac_fp32_fj: f64,
    /// Fetching one weight byte from on-chip SRAM.
    pub sram_byte_fj: f64,
}

impl EnergyParams {
    /// Ballpark 45–130 nm figures.
    pub fn default_figures() -> Self {
        Self {
            sense_fj: 30.0,
            popcount_bit_fj: 3.0,
            program_fj: 10_000.0,
            mac_int8_fj: 230.0,
            mac_fp32_fj: 4_600.0,
            sram_byte_fj: 650.0,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::default_figures()
    }
}

/// Per-inference energy estimate of one classifier, in nanojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceEnergy {
    /// In-RRAM execution (senses + popcount logic, zero weight movement).
    pub rram_nj: f64,
    /// Digital 8-bit execution (MACs + SRAM weight fetches).
    pub int8_nj: f64,
    /// Digital 32-bit float execution.
    pub fp32_nj: f64,
}

impl InferenceEnergy {
    /// Energy advantage of the in-memory implementation over the 8-bit
    /// digital reference.
    pub fn gain_vs_int8(&self) -> f64 {
        self.int8_nj / self.rram_nj
    }

    /// Energy advantage over the 32-bit float reference.
    pub fn gain_vs_fp32(&self) -> f64 {
        self.fp32_nj / self.rram_nj
    }
}

/// Estimates one inference of a deployed [`BinaryNetwork`].
pub fn estimate_network(net: &BinaryNetwork, p: &EnergyParams) -> InferenceEnergy {
    let mut rram_fj = 0.0;
    let mut int8_fj = 0.0;
    let mut fp32_fj = 0.0;
    for layer in net.layers() {
        let synapses = (layer.in_features() * layer.out_features()) as f64;
        // In-memory: one XNOR-sense and one popcount accumulation per
        // synapse; weights never move.
        rram_fj += synapses * (p.sense_fj + p.popcount_bit_fj);
        // Digital: one MAC per synapse plus fetching each weight once per
        // inference (1 byte int8, 4 bytes fp32).
        int8_fj += synapses * (p.mac_int8_fj + p.sram_byte_fj);
        fp32_fj += synapses * (p.mac_fp32_fj + 4.0 * p.sram_byte_fj);
    }
    InferenceEnergy {
        rram_nj: rram_fj / 1e6,
        int8_nj: int8_fj / 1e6,
        fp32_nj: fp32_fj / 1e6,
    }
}

/// Energy of `senses` PCSA read events in nanojoules: one differential
/// sense plus one popcount accumulation per event — the per-read
/// accounting hook for always-on serving. The serving stats count senses
/// per engine replica (`EngineSnapshot::senses` in `rbnn-serve`), and the
/// streaming layer divides this through its window counts to report
/// µJ/window per patient; on a noise-free/fresh fabric it agrees exactly
/// with [`estimate_network`]'s per-inference figure times the inference
/// count, since every synapse is sensed once per read.
pub fn sense_energy_nj(senses: u64, p: &EnergyParams) -> f64 {
    senses as f64 * (p.sense_fj + p.popcount_bit_fj) / 1e6
}

/// One-time programming energy of the whole network, in nanojoules.
pub fn programming_energy_nj(net: &BinaryNetwork, p: &EnergyParams) -> f64 {
    net.weight_bits() as f64 * p.program_fj / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbnn_binary::BinaryDense;
    use rbnn_tensor::BitMatrix;

    fn classifier(inputs: usize, hidden: usize, classes: usize) -> BinaryNetwork {
        let l1 = BinaryDense::new(
            BitMatrix::zeros(hidden, inputs),
            vec![1.0; hidden],
            vec![0.0; hidden],
        );
        let l2 = BinaryDense::new(
            BitMatrix::zeros(classes, hidden),
            vec![1.0; classes],
            vec![0.0; classes],
        );
        BinaryNetwork::new(vec![l1, l2])
    }

    #[test]
    fn in_memory_wins_by_large_factors() {
        let net = classifier(2520, 80, 2);
        let e = estimate_network(&net, &EnergyParams::default_figures());
        assert!(e.gain_vs_int8() > 10.0, "int8 gain {}", e.gain_vs_int8());
        assert!(e.gain_vs_fp32() > 100.0, "fp32 gain {}", e.gain_vs_fp32());
        assert!(e.fp32_nj > e.int8_nj && e.int8_nj > e.rram_nj);
    }

    #[test]
    fn energy_scales_with_synapse_count() {
        let p = EnergyParams::default_figures();
        let small = estimate_network(&classifier(100, 10, 2), &p);
        let large = estimate_network(&classifier(1000, 100, 2), &p);
        let synapse_ratio = (1000.0 * 100.0 + 100.0 * 2.0) / (100.0 * 10.0 + 10.0 * 2.0);
        let energy_ratio = large.rram_nj / small.rram_nj;
        assert!(
            (energy_ratio / synapse_ratio - 1.0).abs() < 1e-6,
            "energy must scale exactly with synapses: {energy_ratio} vs {synapse_ratio}"
        );
    }

    #[test]
    fn per_read_accounting_matches_per_inference_estimate() {
        // One full read of the network senses every synapse once, so the
        // per-read hook at `weight_bits` senses must equal the
        // per-inference estimate exactly.
        let net = classifier(408, 75, 2);
        let p = EnergyParams::default_figures();
        let per_inference = estimate_network(&net, &p).rram_nj;
        let per_read = sense_energy_nj(net.weight_bits() as u64, &p);
        assert!((per_read - per_inference).abs() < 1e-9);
        assert_eq!(sense_energy_nj(0, &p), 0.0);
        // Linear in the sense count.
        assert!((sense_energy_nj(2000, &p) - 2.0 * sense_energy_nj(1000, &p)).abs() < 1e-12);
    }

    #[test]
    fn programming_energy_counts_all_bits() {
        let net = classifier(16, 8, 2);
        let p = EnergyParams::default_figures();
        let expect = (16 * 8 + 8 * 2) as f64 * p.program_fj / 1e6;
        assert!((programming_energy_nj(&net, &p) - expect).abs() < 1e-9);
    }
}
