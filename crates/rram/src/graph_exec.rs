//! Op-graph plan replay on the simulated RRAM fabric.
//!
//! [`NetworkEngine::replay_plan`] walks a compiled
//! [`ExecPlan`](rbnn_graph::ExecPlan)'s fused steps and maps each onto the
//! partitioned-array tile dispatch of [`DenseEngine`](crate::DenseEngine):
//! a fused hidden step becomes one batched tile sweep
//! ([`popcounts_batch`](crate::DenseEngine::popcounts_batch) — per-column
//! word-level input cuts fanned out across row tiles) whose sensed
//! popcounts are fired through the plan's folded thresholds and packed
//! straight back into the plan arena
//! ([`threshold_pack_row`](rbnn_graph::threshold_pack_row)). No
//! intermediate count matrices or `BitVec` activation vectors survive
//! between layers — the in-memory analogue of the fused software kernel,
//! and the execution shape the paper's architecture actually has: arrays
//! sense, thresholds fire in the periphery, packed words flow to the next
//! array group.
//!
//! On noise-free fabric the replay is bitwise-equal to both the legacy
//! [`logits_batch_rows`](NetworkEngine::logits_batch_rows) path and the
//! software [`ExecPlan::replay_rows`](rbnn_graph::ExecPlan::replay_rows):
//! identical tile sweep order (hence identical per-array RNG streams),
//! identical threshold folds, identical affine float expression.

use crate::engine::{record_fabric_senses, NetworkEngine};
use rbnn_graph::{pack_rows, threshold_pack_row, ExecPlan, PlanBuffers, Step};
use rbnn_tensor::BitVec;

impl NetworkEngine {
    /// Replays a compiled execution plan over a batch of float feature
    /// rows on the array fabric, writing `rows.len() × out_features`
    /// logits row-major into `out`.
    ///
    /// The plan must have been compiled from the same network this engine
    /// was programmed with (checked by layer count and widths). Sensing is
    /// Monte-Carlo on marginal cells exactly as in the legacy path; on
    /// noise-free fabric the result equals
    /// [`logits_batch_rows`](Self::logits_batch_rows) bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not match the programmed network, the batch
    /// exceeds the plan capacity, or `out` is too short.
    pub fn replay_plan(
        &mut self,
        plan: &ExecPlan,
        rows: &[&[f32]],
        buffers: &mut PlanBuffers,
        out: &mut [f32],
    ) {
        let n = rows.len();
        assert_eq!(
            self.layers().len(),
            plan.network().layers().len(),
            "plan depth differs from programmed network"
        );
        assert_eq!(
            self.layers().first().map(|l| l.in_features()),
            Some(plan.in_features()),
            "plan input width differs from programmed network"
        );
        assert!(n <= plan.max_batch(), "batch exceeds plan capacity");
        assert!(
            out.len() >= n * plan.out_features(),
            "output slice too short for batch"
        );
        let before = rbnn_telemetry::enabled().then(|| self.stats().senses);
        for step in plan.steps() {
            match step {
                Step::Pack { dst } => pack_rows(rows, dst, buffers.arena_mut()),
                Step::FusedHidden {
                    layer,
                    src,
                    dst,
                    thresholds,
                    ..
                } => {
                    let xs: Vec<BitVec> = (0..n)
                        .map(|i| BitVec::from_words(src.row(buffers.arena(), i), src.width))
                        .collect();
                    let counts = self.layers_mut()[*layer].popcounts_batch(&xs);
                    let arena = buffers.arena_mut();
                    for (i, sensed) in counts.iter().enumerate() {
                        threshold_pack_row(thresholds, sensed, dst.row_mut(arena, i));
                    }
                }
                Step::FusedLogits {
                    layer,
                    src,
                    scale,
                    shift,
                    ..
                } => {
                    let xs: Vec<BitVec> = (0..n)
                        .map(|i| BitVec::from_words(src.row(buffers.arena(), i), src.width))
                        .collect();
                    let counts = self.layers_mut()[*layer].popcounts_batch(&xs);
                    let classes = scale.len();
                    let n_in = src.width as f32;
                    for (i, sensed) in counts.iter().enumerate() {
                        let orow = &mut out[i * classes..(i + 1) * classes];
                        for (r, o) in orow.iter_mut().enumerate() {
                            *o = scale[r] * (2.0 * sensed[r] as f32 - n_in) + shift[r];
                        }
                    }
                }
            }
        }
        if let Some(b) = before {
            record_fabric_senses(self.stats().senses - b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use rbnn_binary::{BinaryDense, BinaryNetwork};
    use rbnn_tensor::BitMatrix;

    fn net(dims: &[usize], seed: u64) -> BinaryNetwork {
        let layers = dims
            .windows(2)
            .map(|w| {
                let (inp, out) = (w[0], w[1]);
                let signs: Vec<f32> = (0..inp * out)
                    .map(|i| {
                        if (i as u64).wrapping_mul(seed | 1) % 7 < 3 {
                            -1.0
                        } else {
                            1.0
                        }
                    })
                    .collect();
                let scale: Vec<f32> = (0..out).map(|r| 0.5 + (r % 3) as f32 * 0.25).collect();
                let shift: Vec<f32> = (0..out).map(|r| (r as f32) - out as f32 / 2.0).collect();
                BinaryDense::new(BitMatrix::from_signs(&signs, out, inp), scale, shift)
            })
            .collect();
        BinaryNetwork::new(layers)
    }

    fn rows(n: usize, width: usize, seed: u64) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..width)
                    .map(|j| {
                        let h = (i * width + j) as u64 ^ seed;
                        (h.wrapping_mul(0x9E37_79B9) % 200) as f32 / 10.0 - 10.0
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn plan_replay_matches_legacy_engine_path_on_noise_free_fabric() {
        let network = net(&[65, 63, 127, 4], 0x11);
        let cfg = EngineConfig::noise_free(0x5EED);
        let batch = rows(6, 65, 0x77);
        let refs: Vec<&[f32]> = batch.iter().map(|r| r.as_slice()).collect();

        let mut legacy_engine = NetworkEngine::program(&network, &cfg);
        let legacy = legacy_engine.logits_batch_rows(&refs);

        let plan = ExecPlan::compile(&network, 8);
        let mut buffers = plan.buffers();
        let mut out = vec![0.0f32; 6 * 4];
        let mut plan_engine = NetworkEngine::program(&network, &cfg);
        plan_engine.replay_plan(&plan, &refs, &mut buffers, &mut out);

        let legacy_bits: Vec<u32> = legacy.as_slice().iter().map(|v| v.to_bits()).collect();
        let plan_bits: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(plan_bits, legacy_bits);
        // Same tile sweeps → same sense counts.
        assert_eq!(legacy_engine.stats().senses, plan_engine.stats().senses);
    }

    #[test]
    fn plan_replay_matches_the_software_replay_on_noise_free_fabric() {
        let network = net(&[128, 64, 2], 0x22);
        let batch = rows(5, 128, 0x99);
        let refs: Vec<&[f32]> = batch.iter().map(|r| r.as_slice()).collect();

        let plan = ExecPlan::compile(&network, 5);
        let mut soft_buf = plan.buffers();
        let mut soft = vec![0.0f32; 5 * 2];
        plan.replay_rows(&refs, &mut soft_buf, &mut soft);

        let mut engine = NetworkEngine::program(&network, &EngineConfig::noise_free(3));
        let mut hw_buf = plan.buffers();
        let mut hw = vec![0.0f32; 5 * 2];
        engine.replay_plan(&plan, &refs, &mut hw_buf, &mut hw);

        let a: Vec<u32> = soft.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = hw.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }
}
