//! The endurance experiment of Fig 4: bit-error rate versus programming
//! cycles, for single-ended (1T1R, both polarities) and differential (2T2R)
//! sensing.
//!
//! The paper cycles one device pair 700 million times, alternating the
//! programmed weight, and measures the error rate of each read style at
//! checkpoints. Simulating every cycle is pointless — wear is a function of
//! the cycle *count* — so the tester fast-forwards the wear state and
//! Monte-Carlo samples program/read trials at each checkpoint. Because BERs
//! below ~10⁻⁶ need prohibitively many trials, closed-form tail
//! probabilities of the same device model are provided alongside
//! ([`analytic_point`]); the bench prints both and EXPERIMENTS.md compares
//! the curves against the paper's.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{stats, DeviceParams, Pcsa, PcsaParams, Synapse2T2R};

/// Bit-error rates measured (or computed) at one cycle checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndurancePoint {
    /// Programming cycles at this checkpoint.
    pub cycles: u64,
    /// Single-ended error rate reading the BL device.
    pub ber_1t1r_bl: f64,
    /// Single-ended error rate reading the complementary (BLb) device.
    pub ber_1t1r_blb: f64,
    /// Differential (2T2R + PCSA) error rate.
    pub ber_2t2r: f64,
}

/// Configuration of the endurance tester.
#[derive(Debug, Clone)]
pub struct EnduranceConfig {
    /// Cycle checkpoints (Fig 4 spans 100–700 million).
    pub checkpoints: Vec<u64>,
    /// Program/read trials per checkpoint (Monte-Carlo resolution floor is
    /// `1/trials`).
    pub trials: usize,
    /// Relative extra wear of the BLb device (Fig 4's two 1T1R curves are
    /// slightly apart; the model attributes this to fabrication asymmetry).
    pub blb_wear_scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl EnduranceConfig {
    /// Fig 4's checkpoints at Monte-Carlo scale suitable for a laptop run.
    pub fn fig4_quick() -> Self {
        Self {
            checkpoints: (1..=7).map(|k| k * 100_000_000).collect(),
            trials: 200_000,
            blb_wear_scale: 1.15,
            seed: 0xF164,
        }
    }
}

/// Runs the Monte-Carlo endurance measurement.
///
/// At each checkpoint the synapse wear state is fast-forwarded, then
/// `trials` alternating program/read rounds measure the three error rates
/// on the same devices, exactly mirroring the paper's protocol.
pub fn run(
    params: &DeviceParams,
    pcsa_params: &PcsaParams,
    cfg: &EnduranceConfig,
) -> Vec<EndurancePoint> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pcsa = Pcsa::new(pcsa_params, &mut rng);
    let mut points = Vec::with_capacity(cfg.checkpoints.len());
    let mut synapse = Synapse2T2R::with_wear_asymmetry(true, cfg.blb_wear_scale, params, &mut rng);
    for &cycles in &cfg.checkpoints {
        let mut err_bl = 0u64;
        let mut err_blb = 0u64;
        let mut err_2t2r = 0u64;
        for t in 0..cfg.trials {
            let weight = t % 2 == 0;
            synapse.set_cycles(cycles);
            synapse.program(weight, params, &mut rng);
            if synapse.read_1t1r_bl(params, &mut rng) != weight {
                err_bl += 1;
            }
            if synapse.read_1t1r_blb(params, &mut rng) != weight {
                err_blb += 1;
            }
            if synapse.read(&pcsa, params, &mut rng) != weight {
                err_2t2r += 1;
            }
        }
        let n = cfg.trials as f64;
        points.push(EndurancePoint {
            cycles,
            ber_1t1r_bl: err_bl as f64 / n,
            ber_1t1r_blb: err_blb as f64 / n,
            ber_2t2r: err_2t2r as f64 / n,
        });
    }
    points
}

/// Closed-form bit-error rates of the same device model at a wear level —
/// exact tail probabilities instead of Monte-Carlo, valid to arbitrarily
/// low BER.
///
/// Derivation: a read errs either through the Gaussian overlap of the two
/// log-normal state distributions (single-ended: one distribution crossing
/// the mid reference; differential: the pair inverting its order, including
/// the PCSA offset), or through *weak* programming events (single-ended: a
/// weak device is a coin flip; differential: only a *double* weak event is
/// ambiguous — the paper's error-correction-like behaviour of 2T2R).
pub fn analytic_point(
    params: &DeviceParams,
    pcsa_params: &PcsaParams,
    cycles: u64,
    blb_wear_scale: f64,
) -> EndurancePoint {
    let delta = params.hrs_mu - params.lrs_mu;
    let sigma_bl = params.lrs_sigma * params.sigma_multiplier(cycles);
    let blb_cycles = (cycles as f64 * blb_wear_scale) as u64;
    let sigma_blb = params.hrs_sigma * params.sigma_multiplier(blb_cycles);
    let p_weak_bl = params.weak_probability(cycles);
    let p_weak_blb = params.weak_probability(blb_cycles);

    // Single-ended: distance from a state median to the mid reference is
    // Δ/2; a weak event is a fair coin against the mid reference.
    let gauss_1t1r_bl = stats::gaussian_tail(delta / 2.0 / sigma_bl);
    let gauss_1t1r_blb = stats::gaussian_tail(delta / 2.0 / sigma_blb);
    let ber_bl = (1.0 - p_weak_bl) * gauss_1t1r_bl + p_weak_bl * 0.5;
    let ber_blb = (1.0 - p_weak_blb) * gauss_1t1r_blb + p_weak_blb * 0.5;

    // Differential: order inversion of the two distributions, with the
    // PCSA offset and per-read noise adding in quadrature; weak events only
    // hurt when both devices are weak (then the order is a coin flip) —
    // a single weak device still sits between the healthy device and its
    // own far distribution, so the comparison usually survives.
    let sigma_diff = (sigma_bl * sigma_bl
        + sigma_blb * sigma_blb
        + pcsa_params.offset_sigma * pcsa_params.offset_sigma
        + 2.0 * pcsa_params.noise_sigma * pcsa_params.noise_sigma
        + 2.0 * params.read_noise * params.read_noise)
        .sqrt();
    let gauss_2t2r = stats::gaussian_tail(delta / sigma_diff);
    let both_weak = p_weak_bl * p_weak_blb;
    let ber_2t2r = (1.0 - both_weak) * gauss_2t2r + both_weak * 0.5;

    EndurancePoint {
        cycles,
        ber_1t1r_bl: ber_bl,
        ber_1t1r_blb: ber_blb,
        ber_2t2r,
    }
}

/// The analytic Fig 4 curve over arbitrary checkpoints.
pub fn analytic_curve(
    params: &DeviceParams,
    pcsa_params: &PcsaParams,
    checkpoints: &[u64],
    blb_wear_scale: f64,
) -> Vec<EndurancePoint> {
    checkpoints
        .iter()
        .map(|&c| analytic_point(params, pcsa_params, c, blb_wear_scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_models() -> (DeviceParams, PcsaParams) {
        (DeviceParams::hfo2_default(), PcsaParams::default_130nm())
    }

    #[test]
    fn analytic_ber_grows_with_cycles() {
        let (dp, pp) = default_models();
        let curve = analytic_curve(
            &dp,
            &pp,
            &[100_000_000, 300_000_000, 500_000_000, 700_000_000],
            1.15,
        );
        for pair in curve.windows(2) {
            assert!(pair[1].ber_1t1r_bl > pair[0].ber_1t1r_bl);
            assert!(pair[1].ber_2t2r > pair[0].ber_2t2r);
        }
    }

    #[test]
    fn analytic_2t2r_is_orders_below_1t1r() {
        // The paper's headline device claim (Fig 4): roughly two orders of
        // magnitude between 2T2R and 1T1R error rates.
        let (dp, pp) = default_models();
        for cycles in [100_000_000u64, 400_000_000] {
            let p = analytic_point(&dp, &pp, cycles, 1.15);
            let gap = p.ber_1t1r_bl / p.ber_2t2r;
            assert!(
                gap > 30.0,
                "gap at {cycles} cycles only {gap:.1}× (1T1R {:.2e}, 2T2R {:.2e})",
                p.ber_1t1r_bl,
                p.ber_2t2r
            );
        }
    }

    #[test]
    fn analytic_fig4_anchor_points() {
        // Calibration targets: 1T1R ≈ 1e-4 at 1e8 cycles, ≈ 1e-2 at 7e8.
        let (dp, pp) = default_models();
        let lo = analytic_point(&dp, &pp, 100_000_000, 1.15);
        let hi = analytic_point(&dp, &pp, 700_000_000, 1.15);
        assert!(
            (3e-5..3e-4).contains(&lo.ber_1t1r_bl),
            "1T1R @1e8 = {:.2e}",
            lo.ber_1t1r_bl
        );
        assert!(
            (3e-3..3e-2).contains(&hi.ber_1t1r_bl),
            "1T1R @7e8 = {:.2e}",
            hi.ber_1t1r_bl
        );
    }

    #[test]
    fn blb_wears_faster_than_bl() {
        let (dp, pp) = default_models();
        let p = analytic_point(&dp, &pp, 400_000_000, 1.15);
        assert!(p.ber_1t1r_blb > p.ber_1t1r_bl, "{p:?}");
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_at_high_wear() {
        let (dp, pp) = default_models();
        let cfg = EnduranceConfig {
            checkpoints: vec![700_000_000],
            trials: 120_000,
            blb_wear_scale: 1.15,
            seed: 1,
        };
        let mc = run(&dp, &pp, &cfg)[0];
        let an = analytic_point(&dp, &pp, 700_000_000, 1.15);
        // 1T1R at percent level: MC should land within ~2× of analytic.
        let ratio = mc.ber_1t1r_bl / an.ber_1t1r_bl;
        assert!(
            (0.5..2.0).contains(&ratio),
            "MC {:.2e} vs analytic {:.2e}",
            mc.ber_1t1r_bl,
            an.ber_1t1r_bl
        );
        // 2T2R errors must be observed but far rarer.
        assert!(mc.ber_2t2r < mc.ber_1t1r_bl);
    }
}
