//! Behavioural precharge sense amplifier (PCSA), plain and XNOR-augmented.
//!
//! Fig 3 of the paper: both branch nodes are precharged high, then
//! discharged through the two resistive devices of a 2T2R pair; the branch
//! with the *lower* resistance discharges faster and latches the output.
//! The decision is therefore a comparison of the two resistances, corrupted
//! by transistor mismatch (a fixed per-instance input offset) and thermal
//! noise (a per-read random term). Adding four transistors folds the BNN
//! XNOR into the amplifier (Fig 3(b)): the input bit swaps which branch
//! drives which output, so the latched value is `XNOR(weight, input)`
//! with no extra gate delay — a key enabler of the paper's in-memory
//! architecture.

use rand::Rng;

use crate::stats;

/// PCSA non-idealities.
#[derive(Debug, Clone, PartialEq)]
pub struct PcsaParams {
    /// Standard deviation of the fixed per-instance input-referred offset,
    /// expressed in log-resistance units (transistor mismatch).
    pub offset_sigma: f64,
    /// Per-read comparison noise (log-resistance units).
    pub noise_sigma: f64,
}

impl PcsaParams {
    /// Defaults calibrated together with
    /// [`DeviceParams::hfo2_default`](crate::DeviceParams::hfo2_default) to
    /// reproduce Fig 4's 2T2R error curve.
    pub fn default_130nm() -> Self {
        Self {
            offset_sigma: 0.27,
            noise_sigma: 0.02,
        }
    }
}

impl Default for PcsaParams {
    fn default() -> Self {
        Self::default_130nm()
    }
}

/// One precharge sense amplifier instance with its sampled mismatch offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Pcsa {
    offset: f64,
    noise_sigma: f64,
}

impl Pcsa {
    /// Instantiates an amplifier, sampling its fixed mismatch offset.
    pub fn new(params: &PcsaParams, rng: &mut impl Rng) -> Self {
        Self {
            offset: stats::normal(0.0, params.offset_sigma, rng),
            noise_sigma: params.noise_sigma,
        }
    }

    /// An ideal amplifier (no offset, no noise) for reference tests.
    pub fn ideal() -> Self {
        Self {
            offset: 0.0,
            noise_sigma: 0.0,
        }
    }

    /// The fixed input-referred offset of this instance.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// The per-read comparison noise σ of this instance.
    pub fn noise_sigma(&self) -> f64 {
        self.noise_sigma
    }

    /// Senses a 2T2R pair: returns `true` (weight +1) when the BL branch
    /// resistance is lower than the BLb branch (i.e. BL discharges first).
    ///
    /// Inputs are log-resistances as produced by
    /// [`RramCell::read_log_resistance`](crate::RramCell::read_log_resistance).
    pub fn sense(&self, log_r_bl: f64, log_r_blb: f64, rng: &mut impl Rng) -> bool {
        let noise = if self.noise_sigma > 0.0 {
            stats::normal(0.0, self.noise_sigma, rng)
        } else {
            0.0
        };
        log_r_blb - log_r_bl + self.offset + noise > 0.0
    }

    /// XNOR-augmented sense (Fig 3(b)): the input bit swaps the branches,
    /// so the latched output is `XNOR(weight, input)`.
    pub fn sense_xnor(
        &self,
        log_r_bl: f64,
        log_r_blb: f64,
        input: bool,
        rng: &mut impl Rng,
    ) -> bool {
        if input {
            self.sense(log_r_bl, log_r_blb, rng)
        } else {
            // Swapping the branches inverts the comparison — including the
            // sign of the instance offset, exactly as the transistor-level
            // swap would.
            !self.sense(log_r_bl, log_r_blb, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_sense_is_a_comparator() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = Pcsa::ideal();
        assert!(p.sense(8.0, 11.0, &mut rng)); // BL lower → +1
        assert!(!p.sense(11.0, 8.0, &mut rng)); // BL higher → −1
    }

    #[test]
    fn xnor_truth_table() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Pcsa::ideal();
        // weight encoded by resistance order: (bl=8, blb=11) ⇒ weight = +1.
        let plus = (8.0, 11.0);
        let minus = (11.0, 8.0);
        // XNOR(+1, 1) = 1 ; XNOR(+1, 0) = 0 ; XNOR(−1, 1) = 0 ; XNOR(−1, 0) = 1.
        assert!(p.sense_xnor(plus.0, plus.1, true, &mut rng));
        assert!(!p.sense_xnor(plus.0, plus.1, false, &mut rng));
        assert!(!p.sense_xnor(minus.0, minus.1, true, &mut rng));
        assert!(p.sense_xnor(minus.0, minus.1, false, &mut rng));
    }

    #[test]
    fn offset_biases_marginal_decisions() {
        let mut rng = StdRng::seed_from_u64(2);
        // Large positive offset: even a slightly higher-resistance BL branch
        // reads as +1.
        let p = Pcsa {
            offset: 0.5,
            noise_sigma: 0.0,
        };
        assert!(p.sense(9.0, 8.8, &mut rng));
        // But a clear difference still wins.
        assert!(!p.sense(11.0, 8.0, &mut rng));
    }

    #[test]
    fn noise_makes_marginal_decisions_stochastic() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = Pcsa {
            offset: 0.0,
            noise_sigma: 0.1,
        };
        let mut ones = 0;
        let n = 2000;
        for _ in 0..n {
            if p.sense(9.0, 9.0, &mut rng) {
                ones += 1;
            }
        }
        // Exactly balanced inputs: ≈ 50/50.
        assert!((ones as f64 / n as f64 - 0.5).abs() < 0.05, "{ones}/{n}");
    }

    #[test]
    fn instance_offsets_vary_but_average_zero() {
        let params = PcsaParams::default_130nm();
        let mut rng = StdRng::seed_from_u64(4);
        let offsets: Vec<f64> = (0..2000)
            .map(|_| Pcsa::new(&params, &mut rng).offset())
            .collect();
        let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
        let var =
            offsets.iter().map(|o| (o - mean) * (o - mean)).sum::<f64>() / offsets.len() as f64;
        assert!(mean.abs() < 0.03, "offset mean {mean}");
        assert!(
            (var.sqrt() - params.offset_sigma).abs() < 0.02,
            "offset std {}",
            var.sqrt()
        );
    }
}
