//! Program-and-verify controller.
//!
//! The paper's companion studies (\[15\], \[16\]) report bit-error rates "under
//! various programming conditions"; industrially, the standard way to trade
//! programming energy for reliability is a **program-verify loop**: after
//! each programming pulse the cell is read back against a guard-banded
//! reference, and re-programmed until it lands with margin (or a retry
//! budget is exhausted). This module implements that controller on top of
//! the device model so the trade-off can be swept as an ablation: verify
//! margin/retries vs residual BER vs extra programming energy (= extra
//! cycles = extra wear).

use rand::Rng;

use crate::{DeviceParams, ResistiveState, RramCell, Synapse2T2R};

/// Configuration of the program-verify loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VerifyConfig {
    /// Maximum programming attempts per device (1 = no verify).
    pub max_attempts: u32,
    /// Guard band around the read reference, in log-resistance units: a
    /// programmed LRS must read below `midpoint − margin`, an HRS above
    /// `midpoint + margin`.
    pub margin: f64,
}

impl VerifyConfig {
    /// No verification: single programming pulse (the Fig 4 baseline).
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            margin: 0.0,
        }
    }

    /// A typical verify setting: up to 5 pulses, half-σ guard band.
    pub fn standard() -> Self {
        Self {
            max_attempts: 5,
            margin: 0.5,
        }
    }
}

/// Outcome of one verified programming operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyOutcome {
    /// Pulses actually applied (1..=max_attempts).
    pub attempts: u32,
    /// Whether the final read satisfied the margin.
    pub verified: bool,
}

/// Programs a single cell with verification.
///
/// Each attempt applies one programming pulse (incrementing wear) and reads
/// the cell back against the guard-banded reference; the loop stops at the
/// first verified landing or when the retry budget runs out.
pub fn program_cell_verified(
    cell: &mut RramCell,
    target: ResistiveState,
    cfg: &VerifyConfig,
    params: &DeviceParams,
    rng: &mut impl Rng,
) -> VerifyOutcome {
    let mid = params.log_midpoint();
    for attempt in 1..=cfg.max_attempts.max(1) {
        cell.program(target, params, rng);
        let r = cell.read_log_resistance(params, rng);
        let ok = match target {
            ResistiveState::Lrs => r < mid - cfg.margin,
            ResistiveState::Hrs => r > mid + cfg.margin,
        };
        if ok {
            return VerifyOutcome {
                attempts: attempt,
                verified: true,
            };
        }
    }
    VerifyOutcome {
        attempts: cfg.max_attempts.max(1),
        verified: false,
    }
}

/// Programs a 2T2R synapse with verification on both devices.
///
/// Returns the total pulses spent and whether both devices verified.
pub fn program_synapse_verified(
    synapse: &mut Synapse2T2R,
    weight: bool,
    cfg: &VerifyConfig,
    params: &DeviceParams,
    rng: &mut impl Rng,
) -> VerifyOutcome {
    let (bl, blb) = synapse.cells_mut();
    let (s_bl, s_blb) = if weight {
        (ResistiveState::Lrs, ResistiveState::Hrs)
    } else {
        (ResistiveState::Hrs, ResistiveState::Lrs)
    };
    let a = program_cell_verified(bl, s_bl, cfg, params, rng);
    let b = program_cell_verified(blb, s_blb, cfg, params, rng);
    VerifyOutcome {
        attempts: a.attempts + b.attempts,
        verified: a.verified && b.verified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pcsa;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn verify_passes_first_try_on_fresh_devices() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut cell = RramCell::new(ResistiveState::Lrs, &params, &mut rng);
        let cfg = VerifyConfig::standard();
        let mut total_attempts = 0;
        let n = 2000;
        for i in 0..n {
            let target = if i % 2 == 0 {
                ResistiveState::Hrs
            } else {
                ResistiveState::Lrs
            };
            let out = program_cell_verified(&mut cell, target, &cfg, &params, &mut rng);
            assert!(out.verified);
            total_attempts += out.attempts;
            cell.set_cycles(0); // hold wear at fresh for this test
        }
        // Fresh devices essentially always verify on the first pulse.
        assert!(
            (total_attempts as f64) < 1.05 * n as f64,
            "mean attempts {:.3}",
            total_attempts as f64 / n as f64
        );
    }

    #[test]
    fn verify_suppresses_worn_device_errors() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(1);
        let pcsa = Pcsa::ideal();
        let cycles = 700_000_000;
        let trials = 40_000;

        let count_errors = |cfg: &VerifyConfig, rng: &mut StdRng| -> (u32, u64) {
            let mut synapse = Synapse2T2R::new(true, &params, rng);
            let mut errors = 0u32;
            let mut pulses = 0u64;
            for t in 0..trials {
                let w = t % 2 == 0;
                synapse.set_cycles(cycles);
                let out = program_synapse_verified(&mut synapse, w, cfg, &params, rng);
                pulses += out.attempts as u64;
                if synapse.read(&pcsa, &params, rng) != w {
                    errors += 1;
                }
            }
            (errors, pulses)
        };

        let (err_noverify, pulses_noverify) = count_errors(&VerifyConfig::none(), &mut rng);
        let (err_verify, pulses_verify) = count_errors(&VerifyConfig::standard(), &mut rng);
        // Verification buys reliability…
        assert!(
            err_verify * 4 < err_noverify.max(4),
            "verify should suppress errors: {err_verify} vs {err_noverify}"
        );
        // …and costs extra programming pulses (energy/wear).
        assert!(
            pulses_verify > pulses_noverify,
            "{pulses_verify} vs {pulses_noverify}"
        );
    }

    #[test]
    fn exhausted_budget_reports_unverified() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut cell = RramCell::new(ResistiveState::Lrs, &params, &mut rng);
        // Impossible margin: nothing verifies.
        let cfg = VerifyConfig {
            max_attempts: 3,
            margin: 100.0,
        };
        let out = program_cell_verified(&mut cell, ResistiveState::Lrs, &cfg, &params, &mut rng);
        assert!(!out.verified);
        assert_eq!(out.attempts, 3);
    }
}
