//! The 2T2R differential synapse.
//!
//! §II-B of the paper: "synaptic weights are stored in a differential
//! fashion: a device pair programmed in the low resistance/high resistance
//! state means a synaptic weight of +1, and reciprocally". This module pairs
//! two [`RramCell`]s on complementary bit lines (BL / BLb) and exposes both
//! the differential (2T2R + PCSA) and the single-ended (1T1R) read paths so
//! the two can be compared, as Fig 4 does.

use rand::Rng;

use crate::{DeviceParams, Pcsa, ResistiveState, RramCell};

/// A differential pair of RRAM cells storing one binary weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Synapse2T2R {
    bl: RramCell,
    blb: RramCell,
}

impl Synapse2T2R {
    /// Creates a synapse programmed to `weight` (`true` = +1 = BL:LRS,
    /// BLb:HRS).
    pub fn new(weight: bool, params: &DeviceParams, rng: &mut impl Rng) -> Self {
        let (s_bl, s_blb) = Self::states_for(weight);
        Self {
            bl: RramCell::new(s_bl, params, rng),
            blb: RramCell::new(s_blb, params, rng),
        }
    }

    /// Creates a synapse whose BLb device wears slightly faster than the BL
    /// device (fabrication asymmetry; gives the distinct 1T1R BL/BLb curves
    /// of Fig 4).
    pub fn with_wear_asymmetry(
        weight: bool,
        blb_wear_scale: f64,
        params: &DeviceParams,
        rng: &mut impl Rng,
    ) -> Self {
        let (s_bl, s_blb) = Self::states_for(weight);
        Self {
            bl: RramCell::new(s_bl, params, rng),
            blb: RramCell::new(s_blb, params, rng).with_wear_scale(blb_wear_scale),
        }
    }

    fn states_for(weight: bool) -> (ResistiveState, ResistiveState) {
        if weight {
            (ResistiveState::Lrs, ResistiveState::Hrs)
        } else {
            (ResistiveState::Hrs, ResistiveState::Lrs)
        }
    }

    /// The weight this synapse was last programmed to.
    pub fn programmed_weight(&self) -> bool {
        self.bl.state() == ResistiveState::Lrs
    }

    /// Programs the pair to `weight` (both devices cycle once).
    pub fn program(&mut self, weight: bool, params: &DeviceParams, rng: &mut impl Rng) {
        let (s_bl, s_blb) = Self::states_for(weight);
        self.bl.program(s_bl, params, rng);
        self.blb.program(s_blb, params, rng);
    }

    /// Fast-forwards the wear counters of both devices.
    pub fn set_cycles(&mut self, cycles: u64) {
        self.bl.set_cycles(cycles);
        self.blb.set_cycles(cycles);
    }

    /// Programming cycles seen by the BL device.
    pub fn cycles(&self) -> u64 {
        self.bl.cycles()
    }

    /// Immutable access to the two devices `(BL, BLb)` — used by the
    /// margin-gated sense path to read the realized log-resistances.
    pub fn cells(&self) -> (&RramCell, &RramCell) {
        (&self.bl, &self.blb)
    }

    /// Mutable access to the two devices `(BL, BLb)` — used by the
    /// program-verify controller, which pulses each device individually.
    pub fn cells_mut(&mut self) -> (&mut RramCell, &mut RramCell) {
        (&mut self.bl, &mut self.blb)
    }

    /// Differential read through a PCSA: the stored weight.
    pub fn read(&self, pcsa: &Pcsa, params: &DeviceParams, rng: &mut impl Rng) -> bool {
        let r_bl = self.bl.read_log_resistance(params, rng);
        let r_blb = self.blb.read_log_resistance(params, rng);
        pcsa.sense(r_bl, r_blb, rng)
    }

    /// Differential read with the XNOR of an input bit folded into the
    /// sense amplifier (Fig 3(b)): returns `XNOR(weight, input)`.
    pub fn read_xnor(
        &self,
        input: bool,
        pcsa: &Pcsa,
        params: &DeviceParams,
        rng: &mut impl Rng,
    ) -> bool {
        let r_bl = self.bl.read_log_resistance(params, rng);
        let r_blb = self.blb.read_log_resistance(params, rng);
        pcsa.sense_xnor(r_bl, r_blb, input, rng)
    }

    /// Single-ended read of the BL device against a reference: `true` when
    /// the device reads LRS (weight +1 convention).
    pub fn read_1t1r_bl(&self, params: &DeviceParams, rng: &mut impl Rng) -> bool {
        self.bl.read_1t1r(params.log_midpoint(), params, rng) == ResistiveState::Lrs
    }

    /// Single-ended read of the BLb device: `true` when the *weight* reads
    /// +1, i.e. the complementary device reads HRS.
    pub fn read_1t1r_blb(&self, params: &DeviceParams, rng: &mut impl Rng) -> bool {
        self.blb.read_1t1r(params.log_midpoint(), params, rng) == ResistiveState::Hrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fresh_synapse_reads_back_correctly() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(0);
        let pcsa = Pcsa::ideal();
        for weight in [true, false] {
            let syn = Synapse2T2R::new(weight, &params, &mut rng);
            assert_eq!(syn.programmed_weight(), weight);
            for _ in 0..100 {
                assert_eq!(syn.read(&pcsa, &params, &mut rng), weight);
            }
        }
    }

    #[test]
    fn xnor_read_matches_logic() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(1);
        let pcsa = Pcsa::ideal();
        for weight in [true, false] {
            let syn = Synapse2T2R::new(weight, &params, &mut rng);
            for input in [true, false] {
                let got = syn.read_xnor(input, &pcsa, &params, &mut rng);
                assert_eq!(got, weight == input, "XNOR({weight}, {input})");
            }
        }
    }

    #[test]
    fn one_t_one_r_reads_agree_when_fresh() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(2);
        for weight in [true, false] {
            let syn = Synapse2T2R::new(weight, &params, &mut rng);
            assert_eq!(syn.read_1t1r_bl(&params, &mut rng), weight);
            assert_eq!(syn.read_1t1r_blb(&params, &mut rng), weight);
        }
    }

    #[test]
    fn reprogramming_flips_weight() {
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(3);
        let pcsa = Pcsa::ideal();
        let mut syn = Synapse2T2R::new(true, &params, &mut rng);
        syn.program(false, &params, &mut rng);
        assert!(!syn.programmed_weight());
        assert!(!syn.read(&pcsa, &params, &mut rng));
        assert_eq!(syn.cycles(), 1);
    }

    #[test]
    fn worn_pair_errs_single_ended_before_differential() {
        // The core 2T2R claim at device level: at high wear, single-ended
        // reads fail much more often than differential reads.
        let params = DeviceParams::hfo2_default();
        let mut rng = StdRng::seed_from_u64(4);
        let pcsa = Pcsa::ideal();
        let trials = 60_000;
        let mut err_1t1r = 0u32;
        let mut err_2t2r = 0u32;
        let mut syn = Synapse2T2R::new(true, &params, &mut rng);
        syn.set_cycles(700_000_000);
        for t in 0..trials {
            let w = t % 2 == 0;
            syn.program(w, &params, &mut rng);
            syn.set_cycles(700_000_000); // hold wear level constant
            if syn.read_1t1r_bl(&params, &mut rng) != w {
                err_1t1r += 1;
            }
            if syn.read(&pcsa, &params, &mut rng) != w {
                err_2t2r += 1;
            }
        }
        assert!(
            err_1t1r > 10 * err_2t2r.max(1),
            "1T1R errors {err_1t1r} should dwarf 2T2R errors {err_2t2r}"
        );
        assert!(
            err_1t1r > 100,
            "expected ~1% 1T1R error rate, got {err_1t1r}/{trials}"
        );
    }
}
