//! The RRAM sense path's deterministic rows resolve through the same
//! dispatched XNOR/popcount word kernels as the software path; on a
//! noise-free fabric the counts must be bitwise identical between the
//! forced-scalar oracle and runtime SIMD dispatch.

use std::sync::Mutex;

use rbnn_rram::{EngineConfig, RramArray};
use rbnn_tensor::{clear_forced_scalar, set_forced_scalar, BitMatrix, BitVec};

static SCALAR_TOGGLE: Mutex<()> = Mutex::new(());

fn xorshift(seed: &mut u64) -> u64 {
    *seed ^= *seed << 13;
    *seed ^= *seed >> 7;
    *seed ^= *seed << 17;
    *seed
}

#[test]
fn noise_free_sense_counts_bitwise_equal_across_dispatch_modes() {
    let _guard = SCALAR_TOGGLE.lock().unwrap_or_else(|e| e.into_inner());
    let cfg = EngineConfig::noise_free(11);
    let (rows, cols) = (32usize, 32usize);
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    let weights = BitMatrix::from_signs(
        &(0..rows * cols)
            .map(|_| {
                if xorshift(&mut seed) & 1 == 1 {
                    1.0
                } else {
                    -1.0
                }
            })
            .collect::<Vec<f32>>(),
        rows,
        cols,
    );
    let inputs: Vec<BitVec> = (0..4)
        .map(|_| {
            BitVec::from_bools(
                &(0..cols)
                    .map(|_| xorshift(&mut seed) & 1 == 1)
                    .collect::<Vec<bool>>(),
            )
        })
        .collect();

    // Two identically seeded arrays, one per dispatch mode: same fabric,
    // same programmed weights, so any count difference is a kernel bug.
    let mut counts = Vec::new();
    for forced in [true, false] {
        set_forced_scalar(forced);
        let mut array = RramArray::new(rows, cols, cfg.device.clone(), cfg.pcsa.clone(), 42);
        array.program_matrix(&weights);
        let mode_counts: Vec<u32> = inputs
            .iter()
            .flat_map(|x| {
                (0..rows)
                    .map(|r| array.xnor_popcount_row(r, x))
                    .collect::<Vec<u32>>()
            })
            .collect();
        counts.push(mode_counts);
    }
    clear_forced_scalar();
    assert_eq!(counts[0], counts[1]);

    // On the noise-free fabric the sensed counts also equal the software
    // XNOR/popcount oracle on the programmed weights.
    let expect: Vec<u32> = inputs
        .iter()
        .flat_map(|x| {
            (0..rows)
                .map(|r| weights.row(r).xnor_popcount(x))
                .collect::<Vec<u32>>()
        })
        .collect();
    assert_eq!(counts[1], expect);
}
