//! Serving walkthrough: train an ECG classifier, export it, register it in
//! a model registry, and serve it through the batched multi-engine
//! `rbnn-serve` runtime — first on the bit-exact software backend, then on
//! a pool of Monte-Carlo RRAM engine replicas.
//!
//! Run with: `cargo run --example serving --release`

use std::time::Duration;

use rbnn_binary::export_classifier;
use rbnn_models::BinarizationStrategy;
use rbnn_nn::{train, Adam};
use rbnn_rram::EngineConfig;
use rbnn_serve::{
    classify_matrix, Backend, BatchPolicy, ModelRegistry, ServeConfig, ServeTask, Server,
};
use rram_bnn::deploy::classifier_features;
use rram_bnn::tasks::{Scale, Task, TaskSetup};

fn main() {
    // 1. Train the paper's ECG model with a binarized classifier (laptop
    //    scale), exactly as in the quickstart.
    let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 42);
    let mut model = setup.build_model(BinarizationStrategy::BinarizedClassifier, 1, 7);
    let (train_ds, val_ds) = setup.dataset().cv_fold(5, 0);
    let mut opt = Adam::new(0.01);
    let cfg = train::TrainConfig {
        epochs: 15,
        batch_size: 32,
        ..Default::default()
    };
    let _ = train::fit(
        &mut model,
        train::Labelled::new(train_ds.samples(), train_ds.labels()),
        None,
        &mut opt,
        &cfg,
    );

    // 2. Export the trained classifier to bit-packed XNOR/popcount form
    //    and register it for the ECG serving task. The registry pairs the
    //    network with the array geometry RRAM replicas should use.
    let network = export_classifier(&model.classifier).expect("binarized classifier");
    let (features, labels) = classifier_features(&mut model, &val_ds);
    println!(
        "exported classifier: {} → {} ({} weight bits)",
        network.in_features(),
        network.out_features(),
        network.weight_bits()
    );
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, network, EngineConfig::test_chip(1));

    // 3. Serve on the software backend: 4 engine replicas, micro-batches
    //    of up to 64 requests with a 250µs linger.
    let config = ServeConfig {
        workers: 4,
        backend: Backend::Software,
        batch: BatchPolicy {
            max_batch: 64,
            max_delay: Duration::from_micros(250),
        },
        ..Default::default()
    };
    let server = Server::start(&registry, &config);
    let handle = server.handle();
    let preds = classify_matrix(&handle, ServeTask::Ecg, &features).expect("served");
    let hits = preds.iter().zip(&labels).filter(|(p, y)| p == y).count();
    println!(
        "\nsoftware pool: served {} validation samples, accuracy {:.1}%",
        labels.len(),
        100.0 * hits as f32 / labels.len() as f32
    );
    println!("{}", server.shutdown());

    // 4. The same traffic on a pool of simulated RRAM chips: every worker
    //    programs its own independently fabricated replica (distinct
    //    device seeds), and each read is a margin-gated PCSA sense — on
    //    these fresh devices virtually every sense short-circuits to its
    //    cached deterministic outcome, so RRAM serving keeps pace with the
    //    software pool instead of running four orders of magnitude behind.
    //    (`classify_matrix` pipelines a window of requests, so the pool
    //    actually forms batches for this single-threaded caller.)
    let server = Server::start(
        &registry,
        &ServeConfig {
            backend: Backend::Rram,
            ..config
        },
    );
    let handle = server.handle();
    let t0 = std::time::Instant::now();
    let preds = classify_matrix(&handle, ServeTask::Ecg, &features).expect("served");
    let elapsed = t0.elapsed();
    let hits = preds.iter().zip(&labels).filter(|(p, y)| p == y).count();
    println!(
        "rram pool: served {} validation samples, accuracy {:.1}% ({:.0} samples/s)",
        labels.len(),
        100.0 * hits as f32 / labels.len() as f32,
        labels.len() as f64 / elapsed.as_secs_f64()
    );
    println!("{}", server.shutdown());
}
