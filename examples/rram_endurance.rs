//! Device-level demo (Fig 4 of the paper): cycle a 2T2R synapse hundreds of
//! millions of times and watch the single-ended (1T1R) bit-error rate climb
//! two orders of magnitude above the differential (2T2R + PCSA) one.
//!
//! Run with: `cargo run --example rram_endurance --release`

use rbnn_rram::{endurance, DeviceParams, EnduranceConfig, PcsaParams};

fn main() {
    let device = DeviceParams::hfo2_default();
    let pcsa = PcsaParams::default_130nm();

    println!(
        "HfO2 device model: LRS median {:.1} kΩ, HRS median {:.1} kΩ",
        (device.lrs_mu.exp()) / 1e3,
        (device.hrs_mu.exp()) / 1e3
    );
    println!(
        "PCSA offset σ = {} (log-resistance units)\n",
        pcsa.offset_sigma
    );

    // Closed-form curve at fine resolution (the smooth Fig 4 lines).
    println!("analytic bit-error rates:");
    println!(
        "{:>9} | {:>10} {:>10} {:>10}",
        "Mcycles", "1T1R BL", "1T1R BLb", "2T2R"
    );
    for k in 1..=7 {
        let cycles = k * 100_000_000;
        let p = endurance::analytic_point(&device, &pcsa, cycles, 1.15);
        println!(
            "{:>9} | {:>10.2e} {:>10.2e} {:>10.2e}",
            cycles / 1_000_000,
            p.ber_1t1r_bl,
            p.ber_1t1r_blb,
            p.ber_2t2r
        );
    }

    // Monte-Carlo measurement on the simulated devices (the noisy dots).
    let cfg = EnduranceConfig {
        checkpoints: vec![200_000_000, 500_000_000, 700_000_000],
        trials: 150_000,
        blb_wear_scale: 1.15,
        seed: 4,
    };
    println!(
        "\nMonte-Carlo measurement ({} program/read trials per point):",
        cfg.trials
    );
    println!(
        "{:>9} | {:>10} {:>10} {:>10}",
        "Mcycles", "1T1R BL", "1T1R BLb", "2T2R"
    );
    for p in endurance::run(&device, &pcsa, &cfg) {
        println!(
            "{:>9} | {:>10.2e} {:>10.2e} {:>10.2e}",
            p.cycles / 1_000_000,
            p.ber_1t1r_bl,
            p.ber_1t1r_blb,
            p.ber_2t2r
        );
    }
    println!("\nPaper Fig 4: the 2T2R error rate sits ~two orders of magnitude below 1T1R,");
    println!("which is why the design needs no error-correcting codes (§II-B).");
}
