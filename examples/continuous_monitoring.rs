//! Continuous monitoring walkthrough: a fleet of synthetic patients
//! streaming unbounded 12-lead ECG through per-patient sliding-window
//! sessions into the batched serving runtime, with debounced K-of-M
//! alarms and per-patient energy/latency accounting — the always-on
//! wearable scenario the paper targets.
//!
//! Run with: `cargo run --example continuous_monitoring --release`

use rbnn_data::ecg::{Electrode, INVERTED};
use rbnn_data::stream::{EcgStream, EcgStreamConfig};
use rbnn_rram::energy::{estimate_network, EnergyParams};
use rbnn_rram::EngineConfig;
use rbnn_serve::{demo_network, Backend, ModelRegistry, ServeConfig, ServeTask, Server};
use rbnn_stream::{
    AlarmConfig, Normalization, RouterConfig, SegmenterConfig, Session, SessionConfig,
    StreamRouter, TailPolicy, WindowLayout,
};

/// 12-lead ECG at 360 Hz, 1-second windows with 50% overlap.
const SAMPLE_RATE: f32 = 360.0;
const WINDOW: usize = 360;
const STRIDE: usize = 180;

fn main() {
    // 1. A deployed ECG window classifier (demo ±1 weights — swap in
    //    `export_classifier` output for a trained one, as in
    //    `examples/serving.rs`) registered for the ECG task.
    let network = demo_network(&[12 * WINDOW, 80, 2], 0xC0DE);
    let energy = estimate_network(&network, &EnergyParams::default_figures());
    let mut registry = ModelRegistry::new();
    registry.insert(ServeTask::Ecg, network, EngineConfig::test_chip(9));
    let server = Server::start(
        &registry,
        &ServeConfig {
            workers: 2,
            backend: Backend::Software,
            ..Default::default()
        },
    );

    // 2. Bind a per-session client once (no per-request registry lookup)
    //    and build the router: 8 patients, 3-of-5 debounced alarms,
    //    µJ/window from the RRAM energy model.
    let client = server.handle().client(ServeTask::Ecg).expect("registered");
    let mut router = StreamRouter::new(
        client,
        RouterConfig {
            chunk_frames: 120,
            windows_per_patient: 20,
            alarm: AlarmConfig {
                k: 3,
                m: 5,
                positive_class: INVERTED,
            },
            energy_nj_per_window: energy.rram_nj,
            ..Default::default()
        },
    );
    for id in 0..8usize {
        // Odd patients suffer an arm-electrode swap mid-stream — the
        // event the paper's classifier is trained to catch.
        let mut cfg = EcgStreamConfig {
            sample_rate: SAMPLE_RATE,
            seed: 0xBED + id as u64,
            ..EcgStreamConfig::default()
        };
        if id % 2 == 1 {
            cfg.swap = Some((Electrode::Ra, Electrode::La));
            cfg.swap_from_segment = 2;
        }
        let session = Session::new(SessionConfig {
            segmenter: SegmenterConfig {
                channels: 12,
                window: WINDOW,
                stride: STRIDE,
                tail: TailPolicy::Drop,
            },
            layout: WindowLayout::ChannelMajor,
            normalization: Normalization::PerWindow,
        });
        router.add_patient(id, Box::new(EcgStream::new(cfg)), session);
    }

    // 3. Run the fleet and read the per-patient verdict streams.
    let reports = router.run().expect("streaming run");
    println!("patient  windows  rt-factor  p99        µJ/window  alarms");
    for r in &reports {
        println!(
            "{:>7}  {:>7}  {:>8.1}×  {:>8.0}µs  {:>9.4}  {:>6}",
            r.id,
            r.windows,
            r.realtime_factor,
            r.p99_latency.as_secs_f64() * 1e6,
            r.energy_uj_per_window,
            r.alarms_raised,
        );
    }
    // Show one patient's timeline around its first alarm, if any fired.
    if let Some(r) = reports.iter().find(|r| r.alarms_raised > 0) {
        println!("\npatient {} timeline (signal-time, class, alarm):", r.id);
        for v in r.verdicts.iter().take(20) {
            println!(
                "  t={:>6.2}s  window {:>3}  class {}  {}{}",
                v.signal_time_s,
                v.window,
                match v.class() {
                    Some(c) => c.to_string(),
                    None => "fault".to_string(),
                },
                if v.alarm_active { "ALARM" } else { "-" },
                match v.alarm_event {
                    Some(e) => format!("  ({e:?})"),
                    None => String::new(),
                }
            );
        }
    }
    server.shutdown();
}
