//! Quickstart: train a binarized-classifier ECG model, fold it to the
//! bit-packed XNOR/popcount form, program it into simulated 2T2R RRAM
//! arrays, and compare accuracy along the whole deployment chain.
//!
//! Run with: `cargo run --example quickstart --release`

use rbnn_models::BinarizationStrategy;
use rbnn_nn::{train, Adam};
use rbnn_rram::EngineConfig;
use rram_bnn::deploy::deploy_and_evaluate;
use rram_bnn::tasks::{Scale, Task, TaskSetup};

fn main() {
    // 1. Synthetic 12-lead ECG electrode-inversion dataset (laptop scale).
    let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 42);
    println!(
        "dataset: {} recordings of shape {:?} ({} classes)",
        setup.dataset().len(),
        setup.dataset().sample_shape(),
        setup.dataset().classes()
    );

    // 2. Table II's network with the paper's recommended strategy:
    //    real convolutions, binarized classifier.
    let mut model = setup.build_model(BinarizationStrategy::BinarizedClassifier, 1, 7);
    let (train_ds, val_ds) = setup.dataset().cv_fold(5, 0);

    // 3. Train with Adam (the paper's optimizer for the medical tasks).
    let mut opt = Adam::new(0.01);
    let cfg = train::TrainConfig {
        epochs: 25,
        batch_size: 32,
        eval_every: 5,
        verbose: true,
        ..Default::default()
    };
    let history = train::fit(
        &mut model,
        train::Labelled::new(train_ds.samples(), train_ds.labels()),
        Some(train::Labelled::new(val_ds.samples(), val_ds.labels())),
        &mut opt,
        &cfg,
    );
    println!(
        "trained: final validation accuracy {:.1}%",
        history.final_val_acc().unwrap_or(0.0) * 100.0
    );

    // 4. Deploy: export the classifier to XNOR/popcount form, program it
    //    into 32×32 2T2R arrays (the paper's test-chip geometry), and
    //    evaluate — fresh and after 500 million programming cycles.
    let report = deploy_and_evaluate(
        &mut model,
        &val_ds,
        &EngineConfig::test_chip(1),
        500_000_000,
    )
    .expect("classifier is binarized and deployable");
    println!("\ndeployment chain accuracy:");
    println!(
        "  software (float graph)     {:.1}%",
        report.software_accuracy * 100.0
    );
    println!(
        "  exported (bit-packed)      {:.1}%",
        report.exported_accuracy * 100.0
    );
    println!(
        "  RRAM arrays (fresh)        {:.1}%",
        report.hardware_accuracy * 100.0
    );
    println!(
        "  RRAM arrays ({}M cycles)  {:.1}%",
        report.cycles / 1_000_000,
        report.worn_accuracy * 100.0
    );
    println!("  physical 32×32 arrays used: {}", report.arrays);
}
