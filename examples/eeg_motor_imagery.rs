//! EEG motor-imagery classification end to end (§III-A of the paper):
//! synthesizes lateralized mu-rhythm trials, trains the Table I network
//! (real weights vs binarized classifier), and reports the accuracy and
//! memory trade-off.
//!
//! Run with: `cargo run --example eeg_motor_imagery --release`

use rbnn_data::{eeg, signal};
use rbnn_models::{memory, BinarizationStrategy};
use rbnn_nn::{train, Adam};
use rram_bnn::tasks::{Scale, Task, TaskSetup};

fn main() {
    let setup = TaskSetup::new(Task::Eeg, Scale::Quick, 7);
    let ds = setup.dataset();
    println!(
        "EEG motor-imagery task: {} trials of shape {:?}",
        ds.len(),
        ds.sample_shape()
    );

    // Show the physiological class signal the network must find: the
    // C4/C3 mu-band power ratio separates left- from right-fist imagery.
    let cfg = eeg::EegConfig::reduced();
    let (t_len, c_len) = (cfg.samples, cfg.channels);
    let mut ratio_sum = [0.0f32; 2];
    let mut counts = [0usize; 2];
    for i in 0..ds.len() {
        let s = ds.samples().index_axis0(i);
        let xs = s.as_slice();
        let chan = |ch: usize| -> Vec<f32> { (0..t_len).map(|t| xs[t * c_len + ch]).collect() };
        let p3 = signal::band_power(&chan(cfg.c3()), cfg.sample_rate, 8.0, 13.0);
        let p4 = signal::band_power(&chan(cfg.c4()), cfg.sample_rate, 8.0, 13.0);
        ratio_sum[ds.labels()[i]] += p4 / (p3 + 1e-9);
        counts[ds.labels()[i]] += 1;
    }
    println!(
        "mean C4/C3 mu-power ratio: left-fist {:.2}, right-fist {:.2} (ERD lateralization)\n",
        ratio_sum[eeg::LEFT_FIST] / counts[eeg::LEFT_FIST] as f32,
        ratio_sum[eeg::RIGHT_FIST] / counts[eeg::RIGHT_FIST] as f32,
    );

    let (train_ds, val_ds) = ds.cv_fold(5, 0);
    for strategy in [
        BinarizationStrategy::RealWeights,
        BinarizationStrategy::BinarizedClassifier,
    ] {
        let mut model = setup.build_model(strategy, 1, 3);
        let mut opt = Adam::new(0.01);
        let tc = train::TrainConfig {
            epochs: 30,
            batch_size: 32,
            eval_every: 30,
            ..Default::default()
        };
        let hist = train::fit(
            &mut model,
            train::Labelled::new(train_ds.samples(), train_ds.labels()),
            Some(train::Labelled::new(val_ds.samples(), val_ds.labels())),
            &mut opt,
            &tc,
        );
        println!(
            "{:<16} val accuracy {:.1}%",
            strategy.label(),
            hist.final_val_acc().unwrap_or(0.0) * 100.0
        );
    }

    let m = memory::eeg_paper();
    println!(
        "\npaper-dimension EEG model: {} params, classifier {:.0}%; classifier \
         binarization saves {:.0}% vs 32-bit (Table IV: 64%)",
        m.total_params(),
        m.classifier_fraction() * 100.0,
        m.bin_classifier_saving(32) * 100.0
    );
}
