//! ECG electrode-inversion detection end to end (§III-B of the paper):
//! trains the Table II network under all three precision strategies and
//! prints the Table-III-style comparison, then shows the memory argument.
//!
//! Run with: `cargo run --example ecg_electrode_inversion --release`

use rbnn_models::{memory, BinarizationStrategy};
use rbnn_nn::{train, Adam, Layer};
use rram_bnn::tasks::{Scale, Task, TaskSetup};

fn main() {
    let setup = TaskSetup::new(Task::Ecg, Scale::Quick, 2024);
    let (train_ds, val_ds) = setup.dataset().cv_fold(5, 0);
    println!(
        "ECG electrode-inversion task: {} train / {} val recordings\n",
        train_ds.len(),
        val_ds.len()
    );

    for strategy in BinarizationStrategy::ALL {
        let mut model = setup.build_model(strategy, 1, 99);
        let params = model.param_count();
        let mut opt = Adam::new(0.01);
        let cfg = train::TrainConfig {
            epochs: 25,
            batch_size: 32,
            eval_every: 25,
            ..Default::default()
        };
        let hist = train::fit(
            &mut model,
            train::Labelled::new(train_ds.samples(), train_ds.labels()),
            Some(train::Labelled::new(val_ds.samples(), val_ds.labels())),
            &mut opt,
            &cfg,
        );
        println!(
            "{:<16} {:>8} params   val accuracy {:.1}%",
            strategy.label(),
            params,
            hist.final_val_acc().unwrap_or(0.0) * 100.0
        );
    }

    // The memory story (Table IV, exact arithmetic at paper dimensions).
    let m = memory::ecg_paper();
    println!("\npaper-dimension ECG model (Table II arithmetic):");
    println!("  conv params       {:>9}", m.conv_params);
    println!(
        "  classifier params {:>9} ({:.0}% of total)",
        m.classifier_params,
        m.classifier_fraction() * 100.0
    );
    println!(
        "  binarizing only the classifier saves {:.1}% vs 32-bit, {:.1}% vs 8-bit",
        m.bin_classifier_saving(32) * 100.0,
        m.bin_classifier_saving(8) * 100.0
    );
}
