//! The memory–accuracy trade-off explorer (the paper's central argument,
//! §III-C and Table IV): where do the parameters live, and what does each
//! precision strategy cost in memory?
//!
//! Run with: `cargo run --example partial_binarization --release`

use rbnn_models::memory;

fn main() {
    println!("Where the parameters live, and what binarization buys (paper dimensions):\n");
    for m in memory::table4_rows() {
        let total = m.total_params();
        println!("{} model:", m.name);
        println!("  total params            {:>10}", total);
        println!(
            "  in classifier           {:>10}  ({:.0}%)",
            m.classifier_params,
            m.classifier_fraction() * 100.0
        );
        println!(
            "  32-bit size             {:>10.2} MiB",
            m.model_bytes(32) as f64 / (1 << 20) as f64
        );
        println!(
            "  8-bit size              {:>10.2} MiB",
            m.model_bytes(8) as f64 / (1 << 20) as f64
        );
        println!(
            "  bin-classifier size     {:>10.2} MiB (conv 32-bit + classifier 1-bit)",
            m.bin_classifier_bytes(32) / (1 << 20) as f64
        );
        println!(
            "  saving vs 32-bit        {:>10.1} %",
            m.bin_classifier_saving(32) * 100.0
        );
        println!(
            "  saving vs 8-bit         {:>10.1} %",
            m.bin_classifier_saving(8) * 100.0
        );
        println!();
    }
    println!("Reading: the medical models are classifier-dominated, so classifier-only");
    println!("binarization nearly matches full binarization's memory savings while keeping");
    println!("real-valued convolutions — and therefore real-network accuracy (Table III).");
    println!("MobileNet is convolution-dominated, so the same strategy saves only ~20%.");
}
