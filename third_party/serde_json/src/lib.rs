//! Offline vendored subset of `serde_json`: pretty serialization only.

use std::fmt;

use serde::Serialize;

/// Serialization error. The vendored pretty-printer is infallible, so this
/// type exists purely to keep `serde_json::to_string_pretty` signatures
/// source-compatible.
#[derive(Debug)]
pub struct Error(());

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json (vendored): serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out, 0);
    Ok(out)
}

/// Serializes `value` as JSON (same output as [`to_string_pretty`] in this
/// vendored subset).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_vec() {
        let v = vec![vec![1u8], vec![2, 3]];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "[\n  [\n    1\n  ],\n  [\n    2,\n    3\n  ]\n]");
    }
}
