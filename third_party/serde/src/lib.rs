//! Offline vendored subset of the `serde` API.
//!
//! This workspace only ever serializes simple result structs to pretty JSON
//! (`serde_json::to_string_pretty` in `rbnn-bench`), so the full serde data
//! model is replaced by one direct trait: [`Serialize::write_json`] appends
//! a pretty-printed JSON rendering of `self`. The derive macros in
//! `serde_derive` generate that method for named-field structs and
//! unit-variant enums — exactly the shapes the experiment result types use.
//!
//! [`Deserialize`] is a marker trait: nothing in the workspace parses JSON
//! back, the derive exists so `#[derive(Serialize, Deserialize)]` on
//! config/strategy enums keeps compiling.

pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves as JSON.
pub trait Serialize {
    /// Appends a pretty-printed JSON rendering of `self` to `out`.
    ///
    /// `indent` is the current nesting depth (two spaces per level).
    fn write_json(&self, out: &mut String, indent: usize);
}

/// Marker counterpart of [`Serialize`]; no parsing support.
pub trait Deserialize {}

macro_rules! impl_display_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String, _indent: usize) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_display_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String, _indent: usize) {
                if self.is_finite() {
                    out.push_str(&self.to_string());
                } else {
                    // JSON has no NaN/Inf; serde_json emits null.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}
impl_float!(f32, f64);

/// Escapes and quotes a string per JSON rules.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Serialize for str {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_json_string(out, self);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String, _indent: usize) {
        write_json_string(out, self);
    }
}
impl Deserialize for String {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String, indent: usize) {
        (**self).write_json(out, indent);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        match self {
            Some(v) => v.write_json(out, indent),
            None => out.push_str("null"),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

fn write_seq<'a, T: Serialize + 'a>(
    items: impl ExactSizeIterator<Item = &'a T>,
    out: &mut String,
    indent: usize,
) {
    if items.len() == 0 {
        out.push_str("[]");
        return;
    }
    out.push('[');
    let inner = indent + 1;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, inner);
        item.write_json(out, inner);
    }
    newline_indent(out, indent);
    out.push(']');
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String, indent: usize) {
        write_seq(self.iter(), out, indent);
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String, indent: usize) {
        write_seq(self.iter(), out, indent);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String, indent: usize) {
        write_seq(self.iter(), out, indent);
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String, indent: usize) {
                out.push('[');
                let inner = indent + 1;
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    newline_indent(out, inner);
                    self.$idx.write_json(out, inner);
                )+
                let _ = first;
                newline_indent(out, indent);
                out.push(']');
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Writes a newline followed by two-space indentation — the pretty-printer's
/// line-break primitive, shared with the derive-generated code.
pub fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Derive-support: writes the separator + quoted key + `": "` for a struct
/// field at depth `indent` (`first` controls the leading comma).
pub fn json_field(out: &mut String, indent: usize, name: &str, first: bool) {
    if !first {
        out.push(',');
    }
    newline_indent(out, indent);
    write_json_string(out, name);
    out.push_str(": ");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_strings() {
        let mut out = String::new();
        42u32.write_json(&mut out, 0);
        assert_eq!(out, "42");
        out.clear();
        f32::NAN.write_json(&mut out, 0);
        assert_eq!(out, "null");
        out.clear();
        "a\"b\n".write_json(&mut out, 0);
        assert_eq!(out, r#""a\"b\n""#);
    }

    #[test]
    fn vectors_pretty_print() {
        let mut out = String::new();
        vec![1u8, 2].write_json(&mut out, 0);
        assert_eq!(out, "[\n  1,\n  2\n]");
        out.clear();
        Vec::<u8>::new().write_json(&mut out, 0);
        assert_eq!(out, "[]");
    }

    #[test]
    fn options_collapse_to_null() {
        let mut out = String::new();
        Option::<u8>::None.write_json(&mut out, 0);
        assert_eq!(out, "null");
        out.clear();
        Some(3u8).write_json(&mut out, 0);
        assert_eq!(out, "3");
    }
}
