//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Provides the names this workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — backed by a
//! small wall-clock harness instead of criterion's full statistical
//! machinery: per benchmark it calibrates an iteration batch to a target
//! duration, takes `sample_size` timed samples, and reports mean ± stddev
//! (plus throughput when configured). Good enough to compare kernels and
//! catch order-of-magnitude regressions; not a replacement for upstream
//! criterion's analysis.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmarked
/// work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The measured routine processes this many logical elements per
    /// iteration.
    Elements(u64),
    /// The measured routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing configuration shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(30),
            measurement_time: Duration::from_millis(300),
        }
    }
}

/// Runs one timed routine through the calibrate → sample loop and prints the
/// result line.
fn run_bench(
    name: &str,
    cfg: &Config,
    throughput: Option<Throughput>,
    mut routine: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warm-up / calibration: grow the batch until it costs ≥ 1/5 of the
    // per-sample budget so Instant overhead stays negligible.
    let per_sample =
        cfg.measurement_time.max(Duration::from_millis(10)) / cfg.sample_size.max(1) as u32;
    let warm_deadline = Instant::now() + cfg.warm_up_time;
    loop {
        bencher.elapsed = Duration::ZERO;
        routine(&mut bencher);
        if bencher.elapsed * 5 >= per_sample || bencher.iters >= u64::MAX / 2 {
            break;
        }
        if Instant::now() >= warm_deadline
            && bencher.elapsed * 5 >= per_sample.min(Duration::from_millis(2))
        {
            break;
        }
        bencher.iters = bencher.iters.saturating_mul(2);
    }
    let iters = bencher.iters;

    let samples: Vec<f64> = (0..cfg.sample_size.max(1))
        .map(|_| {
            bencher.elapsed = Duration::ZERO;
            routine(&mut bencher);
            bencher.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let var =
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len().max(1) as f64;
    let std = var.sqrt();

    let fmt_time = |secs: f64| -> String {
        if secs < 1e-6 {
            format!("{:.2} ns", secs * 1e9)
        } else if secs < 1e-3 {
            format!("{:.2} µs", secs * 1e6)
        } else if secs < 1.0 {
            format!("{:.2} ms", secs * 1e3)
        } else {
            format!("{secs:.3} s")
        }
    };
    let mut line = format!(
        "{name:<40} time: {} ± {} / iter ({iters} iters/sample, {} samples)",
        fmt_time(mean),
        fmt_time(std),
        samples.len()
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if mean > 0.0 {
            line.push_str(&format!("  thrpt: {:.0} {unit}/s", count as f64 / mean));
        }
    }
    println!("{line}");
}

/// The measurement handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine(iters)` where the routine manages its own loop.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        self.elapsed = routine(self.iters);
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Upstream-compat no-op (CLI args are ignored by the vendored
    /// harness).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&name.into_id(), &self.cfg, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg.clone(),
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: Config,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Sets the measurement budget for benches in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Annotates subsequent benches with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_bench(&name, &self.cfg, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_id());
        run_bench(&name, &self.cfg, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (upstream writes reports here; the vendored harness
    /// prints as it goes).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, in either upstream form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` that runs every group (CLI arguments from
/// `cargo bench` are accepted and ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }
}
