//! Offline vendored subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments without network access to
//! crates.io, so the handful of `rand` features the reproduction uses are
//! reimplemented here behind the same paths and trait shapes:
//!
//! * [`RngCore`] / [`Rng`] (with `gen`, `gen_range`, `gen_bool`, `fill`);
//! * [`SeedableRng`] with `seed_from_u64` / `from_seed`;
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded through SplitMix64
//!   (not the upstream ChaCha12 stream; every consumer in this workspace is
//!   statistical, none depends on the exact upstream byte stream);
//! * [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`;
//! * [`distributions::Standard`] / [`distributions::Distribution`].
//!
//! The numeric conversions (open unit interval floats, widening-multiply
//! integer ranges) follow the standard constructions used by upstream rand.

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that `Rng::gen` can produce (mirror of sampling from `Standard`).
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution of the type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types `gen_range` can sample uniformly (mirror of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                let u = <$t as StandardSample>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges `Rng::gen_range` accepts. The single generic impl per range type
/// (rather than one impl per element type) matters: it lets unresolved
/// float literals unify with the surrounding expression exactly as upstream
/// rand's `SampleRange` does.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// High-level random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::sample_standard(self) < p
    }

    /// Draws from an explicit distribution object.
    #[inline]
    fn sample<T, D: Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }

    /// Fills a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded via SplitMix64
    /// (the same construction upstream rand documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// A generator seeded from the operating system / time, for the rare
/// non-reproducible call sites.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let addr = &nanos as *const _ as u64;
    SeedableRng::seed_from_u64(nanos ^ addr.rotate_left(32))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(-3i32..7);
            assert!((-3..7).contains(&i));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn mean_of_unit_draws_is_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left order intact");
    }
}
