//! Minimal distribution traits (mirror of `rand::distributions`).

use crate::{RngCore, StandardSample};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution of a type (what `Rng::gen` samples).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl<T: StandardSample> Distribution<T> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_standard(rng)
    }
}
