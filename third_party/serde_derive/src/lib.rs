//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's JSON-only serde subset.
//!
//! Implemented with hand-rolled token parsing (no `syn`/`quote`, which are
//! unavailable offline). Supports exactly the shapes the workspace derives
//! on: structs with named fields and enums with unit variants. Anything
//! else produces a `compile_error!` pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of a derive input.
enum Shape {
    /// Struct name + ordered field names.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names.
    Enum(String, Vec<String>),
}

/// Skips `#[...]` attribute at `i` (including doc comments); returns the
/// index after it, or `i` unchanged.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Extracts the ordered field names of a named-field struct body.
fn parse_struct_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        // Visibility: `pub` optionally followed by `(crate)` etc.
        if matches!(&body[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&body[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found `{other}`")),
        };
        i += 1;
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found `{other}`")),
        }
        fields.push(name);
        // Skip the type up to the next top-level comma, tracking `<...>`
        // nesting so commas inside generics don't split a field.
        let mut angle = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Extracts the variant names of a unit-variant enum body.
fn parse_enum_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs(body, i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found `{other}`")),
        };
        i += 1;
        if i < body.len() {
            if let TokenTree::Group(_) = &body[i] {
                return Err(format!(
                    "variant `{name}` carries data; only unit variants are supported"
                ));
            }
        }
        variants.push(name);
        // Skip optional `= discriminant` up to the comma.
        while i < body.len() {
            if matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        i = skip_attrs(&tokens, i);
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(
                    tokens.get(i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id))
                if id.to_string() == "struct" || id.to_string() == "enum" =>
            {
                let is_struct = id.to_string() == "struct";
                let name = match tokens.get(i + 1) {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => return Err(format!("expected type name, found {other:?}")),
                };
                i += 2;
                if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
                    return Err(format!("`{name}`: generic types are not supported"));
                }
                let body = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        g.stream().into_iter().collect::<Vec<_>>()
                    }
                    _ => {
                        return Err(format!(
                            "`{name}`: only brace-bodied (named-field / unit-variant) \
                             types are supported"
                        ))
                    }
                };
                return if is_struct {
                    Ok(Shape::Struct(name, parse_struct_fields(&body)?))
                } else {
                    Ok(Shape::Enum(name, parse_enum_variants(&body)?))
                };
            }
            Some(_) => i += 1,
            None => return Err("no struct or enum found in derive input".into()),
        }
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!(
        "compile_error!({:?});",
        format!("serde_derive (vendored): {msg}")
    )
    .parse()
    .expect("compile_error tokens")
}

/// Derives `serde::Serialize` (vendored JSON-only subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct(name, fields) => {
            let mut body = String::new();
            if fields.is_empty() {
                body.push_str("out.push_str(\"{}\");");
            } else {
                body.push_str("out.push('{');\n");
                for (idx, f) in fields.iter().enumerate() {
                    body.push_str(&format!(
                        "::serde::json_field(out, indent + 1, {f:?}, {first});\n\
                         ::serde::Serialize::write_json(&self.{f}, out, indent + 1);\n",
                        first = idx == 0
                    ));
                }
                body.push_str("::serde::newline_indent(out, indent);\nout.push('}');");
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn write_json(&self, out: &mut ::std::string::String, indent: usize) {{\n\
                     let _ = indent;\n{body}\n}}\n}}"
            )
        }
        Shape::Enum(name, variants) => {
            if variants.is_empty() {
                return compile_error(&format!("enum `{name}` has no variants"));
            }
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                   fn write_json(&self, out: &mut ::std::string::String, _indent: usize) {{\n\
                     let s = match self {{\n{arms}}};\n\
                     ::serde::write_json_string(out, s);\n}}\n}}"
            )
        }
    };
    code.parse().expect("generated impl tokens")
}

/// Derives `serde::Deserialize` (vendored marker-trait subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let name = match shape {
        Shape::Struct(name, _) | Shape::Enum(name, _) => name,
    };
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated impl tokens")
}
